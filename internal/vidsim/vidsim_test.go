package vidsim

import (
	"math"
	"testing"

	"videodrift/internal/stats"
)

func TestLerpEndpoints(t *testing.T) {
	a, b := Day(), Night()
	if got := Lerp(a, b, 0); got.Background != a.Background || got.Name != "day" {
		t.Errorf("Lerp t=0 = %+v", got)
	}
	if got := Lerp(a, b, 1); got.Background != b.Background || got.Name != "night" {
		t.Errorf("Lerp t=1 = %+v", got)
	}
	mid := Lerp(a, b, 0.5)
	want := (a.Background + b.Background) / 2
	if math.Abs(mid.Background-want) > 1e-12 {
		t.Errorf("Lerp t=0.5 background = %v, want %v", mid.Background, want)
	}
	if mid.Name != "night" { // t >= 0.5 takes b's identity
		t.Errorf("Lerp t=0.5 name = %q", mid.Name)
	}
}

func TestLerpMonotone(t *testing.T) {
	a, b := Night(), Day() // background 0.10 -> 0.75
	prev := -1.0
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
		bg := Lerp(a, b, tt).Background
		if bg < prev {
			t.Fatalf("Lerp background not monotone at t=%v", tt)
		}
		prev = bg
	}
}

func TestGeneratorFrameShape(t *testing.T) {
	g := NewSceneGenerator(Day(), 32, 24, stats.NewRNG(1))
	f := g.Next()
	if f.W != 32 || f.H != 24 || len(f.Pixels) != 32*24 {
		t.Fatalf("frame shape %dx%d len %d", f.W, f.H, len(f.Pixels))
	}
	for _, p := range f.Pixels {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("pixel out of range: %v", p)
		}
	}
	if f.Condition != "day" {
		t.Errorf("condition = %q", f.Condition)
	}
}

func TestGeneratorSteadyStateObjectCount(t *testing.T) {
	cond := Day() // CarRate+BusRate = 9
	g := NewSceneGenerator(cond, 32, 32, stats.NewRNG(2))
	var w stats.Welford
	for i := 0; i < 2000; i++ {
		f := g.Next()
		w.Add(float64(len(f.Truth)))
	}
	// Burst dynamics inflate the steady-state mean above the nominal rate
	// (the spawner responds faster to rising targets than falling ones);
	// dataset-level rates are calibrated against this in condition.go.
	want := cond.CarRate + cond.BusRate
	if w.Mean() < 0.9*want || w.Mean() > 1.5*want {
		t.Errorf("mean objects/frame = %v, want within [%.1f, %.1f]", w.Mean(), 0.9*want, 1.5*want)
	}
	if w.StdDev() < 1 {
		t.Errorf("object count stddev = %v, want bursty traffic", w.StdDev())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewSceneGenerator(Night(), 16, 16, stats.NewRNG(3))
	b := NewSceneGenerator(Night(), 16, 16, stats.NewRNG(3))
	for i := 0; i < 10; i++ {
		fa, fb := a.Next(), b.Next()
		if fa.Pixels.Dist(fb.Pixels) != 0 {
			t.Fatalf("same-seed generators diverged at frame %d", i)
		}
	}
}

// TestTemporalCorrelation verifies consecutive frames are more similar
// than frames far apart — the video property that breaks naive i.i.d.
// assumptions and motivates the paper's VAE sampling step.
func TestTemporalCorrelation(t *testing.T) {
	g := NewSceneGenerator(Day(), 32, 32, stats.NewRNG(4))
	frames := make([]Frame, 200)
	for i := range frames {
		frames[i] = g.Next()
	}
	adjacent, distant := 0.0, 0.0
	n := 0
	for i := 0; i+100 < len(frames); i += 5 {
		adjacent += frames[i].Pixels.Dist(frames[i+1].Pixels)
		distant += frames[i].Pixels.Dist(frames[i+100].Pixels)
		n++
	}
	if adjacent >= distant {
		t.Errorf("adjacent distance %v >= distant %v — no temporal correlation", adjacent/float64(n), distant/float64(n))
	}
}

func TestConditionsSeparateInPixelSpace(t *testing.T) {
	meanBrightness := func(c Condition, seed int64) float64 {
		g := NewSceneGenerator(c, 24, 24, stats.NewRNG(seed))
		total := 0.0
		for i := 0; i < 50; i++ {
			total += g.Next().Pixels.Mean()
		}
		return total / 50
	}
	day := meanBrightness(Day(), 5)
	night := meanBrightness(Night(), 6)
	if day-night < 0.25 {
		t.Errorf("day %v vs night %v brightness too close", day, night)
	}
	rain := meanBrightness(RainCond(), 7)
	if !(night < rain && rain < day) {
		t.Errorf("expected night < rain < day, got %v %v %v", night, rain, day)
	}
}

func TestAngleConditionsDiffer(t *testing.T) {
	a1 := Angle(1, 17, -1)
	a2 := Angle(2, 17, -1)
	if a1.BandLo == a2.BandLo && a1.ObjScale == a2.ObjScale && a1.Background == a2.Background {
		t.Error("consecutive angles have identical geometry")
	}
	// Tokyo-style similarity: angle 3 similar to 1 pulls band toward 1.
	a3sim := Angle(3, 19, 1)
	a3 := Angle(3, 19, -1)
	d := func(x, y Condition) float64 {
		return math.Abs(x.BandLo-y.BandLo) + math.Abs(x.BandHi-y.BandHi)
	}
	if d(a3sim, a1) >= d(a3, a1) {
		t.Error("similarTo did not pull angle 3 toward angle 1")
	}
}

func TestFrameCountClass(t *testing.T) {
	f := Frame{W: 10, H: 10, Truth: []Object{
		{Class: Car, X: 5, Y: 5},
		{Class: Car, X: -3, Y: 5}, // outside
		{Class: Bus, X: 2, Y: 2},
	}}
	if got := f.CountClass(Car); got != 1 {
		t.Errorf("CountClass(Car) = %d", got)
	}
	if got := f.CountClass(Bus); got != 1 {
		t.Errorf("CountClass(Bus) = %d", got)
	}
}

func TestObjectEdges(t *testing.T) {
	o := Object{X: 10, Y: 20, W: 4, H: 6}
	if o.Left() != 8 || o.Right() != 12 || o.Top() != 17 || o.Bottom() != 23 {
		t.Errorf("edges = %v %v %v %v", o.Left(), o.Right(), o.Top(), o.Bottom())
	}
}

func TestStreamScriptBasics(t *testing.T) {
	s := NewStream(16, 16, 9,
		Segment{Cond: Day(), Length: 30},
		Segment{Cond: Night(), Length: 20},
		Segment{Cond: RainCond(), Length: 10},
	)
	if got := s.TotalLength(); got != 60 {
		t.Errorf("TotalLength = %d", got)
	}
	pts := s.DriftPoints()
	if len(pts) != 2 || pts[0] != 30 || pts[1] != 50 {
		t.Errorf("DriftPoints = %v", pts)
	}
	names := s.SegmentNames()
	if len(names) != 3 || names[1] != "night" {
		t.Errorf("SegmentNames = %v", names)
	}
	frames := s.Collect(-1)
	if len(frames) != 60 {
		t.Fatalf("Collect got %d frames", len(frames))
	}
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
	}
	if frames[29].Condition != "day" || frames[30].Condition != "night" {
		t.Errorf("conditions around drift: %q -> %q", frames[29].Condition, frames[30].Condition)
	}
	// Exhausted stream keeps returning false.
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream returned a frame")
	}
}

func TestStreamAbruptDriftShiftsBrightness(t *testing.T) {
	s := NewStream(24, 24, 10,
		Segment{Cond: Day(), Length: 50},
		Segment{Cond: Night(), Length: 50},
	)
	frames := s.Collect(-1)
	pre, post := 0.0, 0.0
	for i := 25; i < 50; i++ {
		pre += frames[i].Pixels.Mean()
	}
	for i := 50; i < 75; i++ {
		post += frames[i].Pixels.Mean()
	}
	if (pre-post)/25 < 0.3 {
		t.Errorf("abrupt day->night shift too small: pre %v post %v", pre/25, post/25)
	}
}

func TestStreamGradualTransition(t *testing.T) {
	s := NewStream(24, 24, 11,
		Segment{Cond: Day(), Length: 100},
		Segment{Cond: Night(), Length: 200, TransitionLen: 100},
	)
	frames := s.Collect(-1)
	avg := func(lo, hi int) float64 {
		total := 0.0
		for i := lo; i < hi; i++ {
			total += frames[i].Pixels.Mean()
		}
		return total / float64(hi-lo)
	}
	day := avg(50, 100)
	mid := avg(140, 160)
	night := avg(250, 300)
	if !(night < mid && mid < day) {
		t.Errorf("gradual drift not monotone: day %v mid %v night %v", day, mid, night)
	}
	if day-mid < 0.1 || mid-night < 0.1 {
		t.Errorf("midpoint not intermediate: day %v mid %v night %v", day, mid, night)
	}
}

func TestStreamResetDeterminism(t *testing.T) {
	s := NewStream(16, 16, 12, Segment{Cond: Day(), Length: 20})
	first := s.Collect(-1)
	s.Reset()
	second := s.Collect(-1)
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Pixels.Dist(second[i].Pixels) != 0 {
			t.Fatalf("Reset not deterministic at frame %d", i)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewStream(8, 8, 1) },
		func() { NewStream(8, 8, 1, Segment{Cond: Day(), Length: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGenerateTraining(t *testing.T) {
	frames := GenerateTraining(SnowCond(), 16, 16, 25, 13)
	if len(frames) != 25 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Condition != "snow" {
			t.Fatalf("condition = %q", f.Condition)
		}
	}
	// Deterministic for a given seed.
	again := GenerateTraining(SnowCond(), 16, 16, 25, 13)
	if frames[10].Pixels.Dist(again[10].Pixels) != 0 {
		t.Error("GenerateTraining not deterministic")
	}
}

func TestWeatherEffectsChangePixels(t *testing.T) {
	for _, w := range []Weather{Rain, Snow} {
		cond := RainCond()
		cond.Weather = w
		cond.WeatherIx = 0.8
		clear := cond
		clear.Weather = Clear
		// Same seed → identical dynamics on the first frame; only the
		// weather overlay differs, and it only ever brightens pixels.
		fw := NewSceneGenerator(cond, 24, 24, stats.NewRNG(14)).Next()
		fc := NewSceneGenerator(clear, 24, 24, stats.NewRNG(14)).Next()
		changed := 0
		for i := range fw.Pixels {
			if fw.Pixels[i] > fc.Pixels[i] {
				changed++
			}
			if fw.Pixels[i] < fc.Pixels[i]-1e-12 {
				t.Fatalf("%v weather darkened pixel %d", w, i)
			}
		}
		if changed == 0 {
			t.Errorf("%v weather changed no pixels", w)
		}
	}
}

func TestWeatherString(t *testing.T) {
	if Clear.String() != "clear" || Rain.String() != "rain" || Snow.String() != "snow" {
		t.Error("Weather.String() wrong")
	}
	if Car.String() != "car" || Bus.String() != "bus" {
		t.Error("Class.String() wrong")
	}
}
