// Package vidsim is the synthetic video-stream substrate standing in for
// the real datasets the paper evaluates on (BDD, Detrac, Tokyo — see
// DESIGN.md §2). It renders small grayscale frames of moving rectangular
// objects (cars, buses) over a noisy background whose statistics are
// controlled by a Condition (time of day, weather, camera angle). Frames
// within a condition are temporally correlated (persistent moving objects,
// AR(1) background and traffic intensity), and switching or interpolating
// conditions produces the abrupt and gradual data drifts the paper's
// algorithms must detect.
package vidsim

// Weather selects an additive visual effect applied after the scene is
// rendered.
type Weather int

// Weather effects mirroring the BDD condition split.
const (
	Clear Weather = iota
	Rain          // diagonal bright streaks
	Snow          // random bright speckles
)

// String returns a human-readable name for the weather effect.
func (w Weather) String() string {
	switch w {
	case Rain:
		return "rain"
	case Snow:
		return "snow"
	default:
		return "clear"
	}
}

// Condition parameterizes the frame distribution of one video segment —
// the F_k of the paper's problem statement (§3). Two conditions with
// different parameters induce different pixel distributions, which is what
// a drift detector must pick up.
type Condition struct {
	Name string

	// Background.
	Background float64 // mean background brightness in [0,1]
	BgNoise    float64 // per-pixel Gaussian noise sigma
	BgDrift    float64 // AR(1) innovation sigma of the global brightness

	// Traffic.
	CarRate float64 // long-run mean number of cars per frame
	BusRate float64 // long-run mean number of buses per frame
	Burst   float64 // overdispersion of traffic (0 = plain Poisson)

	// Appearance.
	CarIntensity float64 // absolute brightness of car pixels
	BusIntensity float64 // absolute brightness of bus pixels
	ObjNoise     float64 // per-object intensity jitter

	// Geometry (the camera-angle knobs).
	ObjScale float64 // object size multiplier (angle/zoom)
	BandLo   float64 // top of the vertical band objects occupy (fraction of H)
	BandHi   float64 // bottom of the band (fraction of H)
	SpeedX   float64 // mean horizontal speed in pixels/frame (sign = direction)
	SpeedVar float64 // per-object speed jitter

	Weather   Weather
	WeatherIx float64 // effect intensity in [0,1]
}

// Lerp linearly interpolates every numeric field between a and b at
// parameter t in [0,1]; it keeps a's name and weather for t < 0.5 and b's
// otherwise. It is how gradual ("slow") drifts are scripted.
func Lerp(a, b Condition, t float64) Condition {
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	mix := func(x, y float64) float64 { return x + (y-x)*t }
	c := Condition{
		Background:   mix(a.Background, b.Background),
		BgNoise:      mix(a.BgNoise, b.BgNoise),
		BgDrift:      mix(a.BgDrift, b.BgDrift),
		CarRate:      mix(a.CarRate, b.CarRate),
		BusRate:      mix(a.BusRate, b.BusRate),
		Burst:        mix(a.Burst, b.Burst),
		CarIntensity: mix(a.CarIntensity, b.CarIntensity),
		BusIntensity: mix(a.BusIntensity, b.BusIntensity),
		ObjNoise:     mix(a.ObjNoise, b.ObjNoise),
		ObjScale:     mix(a.ObjScale, b.ObjScale),
		BandLo:       mix(a.BandLo, b.BandLo),
		BandHi:       mix(a.BandHi, b.BandHi),
		SpeedX:       mix(a.SpeedX, b.SpeedX),
		SpeedVar:     mix(a.SpeedVar, b.SpeedVar),
		WeatherIx:    mix(a.WeatherIx, b.WeatherIx),
	}
	if t < 0.5 {
		c.Name = a.Name
		c.Weather = a.Weather
	} else {
		c.Name = b.Name
		c.Weather = b.Weather
	}
	return c
}

// The predefined conditions below are the analogs of the paper's dataset
// sequences. Rates are tuned so that dataset-level objects-per-frame
// statistics land near the paper's Table 5.

// Day is a bright dashcam daytime scene (BDD "Day").
func Day() Condition {
	return Condition{
		Name: "day", Background: 0.75, BgNoise: 0.04, BgDrift: 0.004,
		CarRate: 6.6, BusRate: 1.3, Burst: 1.2,
		CarIntensity: 0.30, BusIntensity: 0.18, ObjNoise: 0.03,
		ObjScale: 0.85, BandLo: 0.35, BandHi: 0.85, SpeedX: 1.2, SpeedVar: 0.4,
		Weather: Clear,
	}
}

// Night is a dark scene with bright vehicle lights (BDD "Night").
func Night() Condition {
	return Condition{
		Name: "night", Background: 0.10, BgNoise: 0.03, BgDrift: 0.003,
		CarRate: 6.6, BusRate: 1.3, Burst: 1.2,
		CarIntensity: 0.55, BusIntensity: 0.70, ObjNoise: 0.035,
		// At night a vehicle is mostly its lights: far fewer pixels per
		// vehicle than a daytime body, so occupancy→count slopes differ
		// across conditions (which is what makes per-condition models
		// non-transferable, as in real footage).
		ObjScale: 0.55, BandLo: 0.35, BandHi: 0.85, SpeedX: 1.2, SpeedVar: 0.4,
		Weather: Clear,
	}
}

// RainCond is a mid-brightness scene with diagonal streaks (BDD "Rain").
func RainCond() Condition {
	return Condition{
		Name: "rain", Background: 0.45, BgNoise: 0.06, BgDrift: 0.004,
		CarRate: 6.6, BusRate: 1.3, Burst: 1.2,
		CarIntensity: 0.20, BusIntensity: 0.12, ObjNoise: 0.03,
		ObjScale: 0.7, BandLo: 0.35, BandHi: 0.85, SpeedX: 1.0, SpeedVar: 0.4,
		Weather: Rain, WeatherIx: 0.6,
	}
}

// SnowCond is a bright low-contrast scene with speckles (BDD "Snow").
func SnowCond() Condition {
	return Condition{
		Name: "snow", Background: 0.88, BgNoise: 0.05, BgDrift: 0.004,
		CarRate: 6.6, BusRate: 1.3, Burst: 1.2,
		CarIntensity: 0.50, BusIntensity: 0.35, ObjNoise: 0.03,
		ObjScale: 1.1, BandLo: 0.35, BandHi: 0.85, SpeedX: 0.6, SpeedVar: 0.3,
		Weather: Snow, WeatherIx: 0.45,
	}
}

// Angle builds a fixed-camera traffic condition for camera angle k (1-based),
// with rate controlling the long-run mean vehicles per frame. Consecutive
// angles differ in object band, scale, speed and background, mimicking the
// Detrac/Tokyo camera-angle switches. When similarTo >= 0, the band
// geometry is nudged toward that angle's, modeling the Tokyo dataset where
// angles 1 and 3 share part of their field of view.
func Angle(k int, rate float64, similarTo int) Condition {
	bg := 0.45 + 0.12*float64(k%3) - 0.06*float64(k%2)
	base := Condition{
		Name:       "angle" + string(rune('0'+k)),
		Background: bg,
		BgNoise:    0.035, BgDrift: 0.003,
		CarRate: rate * 0.72, BusRate: rate * 0.12, Burst: 1.2,
		// Object intensities track the background at a guaranteed contrast
		// so vehicles stay detectable from every camera angle.
		CarIntensity: bg - 0.28 - 0.04*float64(k%3),
		BusIntensity: bg - 0.36 - 0.03*float64(k%2),
		ObjNoise:     0.03,
		ObjScale:     0.8 + 0.15*float64(k%3),
		BandLo:       0.15 + 0.12*float64(k%4), BandHi: 0.55 + 0.1*float64(k%4),
		SpeedX: 0.8 + 0.3*float64(k%2), SpeedVar: 0.3,
		Weather: Clear,
	}
	if k%2 == 0 {
		base.SpeedX = -base.SpeedX
	}
	if similarTo > 0 {
		ref := Angle(similarTo, rate, -1)
		base.BandLo = 0.7*base.BandLo + 0.3*ref.BandLo
		base.BandHi = 0.7*base.BandHi + 0.3*ref.BandHi
		base.Background = 0.6*base.Background + 0.4*ref.Background
	}
	return base
}
