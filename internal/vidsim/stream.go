package vidsim

import "videodrift/internal/stats"

// Segment is one scripted portion of a stream: Length frames drawn under
// Cond. When TransitionLen > 0 the previous segment's condition is
// linearly interpolated into Cond over the first TransitionLen frames (a
// gradual drift, like the day→night "slow drift" setting of paper §6.1.3);
// otherwise the switch is abrupt (camera-angle or weather cut).
type Segment struct {
	Cond          Condition
	Length        int
	TransitionLen int
}

// Stream produces a scripted frame sequence with known drift points — the
// unbounded sequence S = {f1, f2, ...} of the paper's problem statement,
// materialized lazily. It is not safe for concurrent use.
type Stream struct {
	segments []Segment
	w, h     int
	seed     int64

	rng    *stats.RNG
	gen    *SceneGenerator
	seg    int
	pos    int // frames produced within the current segment
	global int // frames produced overall
}

// NewStream builds a stream over the given segments. Frames are w×h.
// Generation is fully deterministic given the seed.
func NewStream(w, h int, seed int64, segments ...Segment) *Stream {
	if len(segments) == 0 {
		panic("vidsim: NewStream with no segments")
	}
	for _, s := range segments {
		if s.Length <= 0 {
			panic("vidsim: NewStream segment with non-positive length")
		}
	}
	s := &Stream{segments: segments, w: w, h: h, seed: seed}
	s.Reset()
	return s
}

// Reset rewinds the stream to its first frame; the regenerated sequence is
// identical to the original.
func (s *Stream) Reset() {
	s.rng = stats.NewRNG(s.seed)
	s.gen = NewSceneGenerator(s.segments[0].Cond, s.w, s.h, s.rng.Split())
	s.seg = 0
	s.pos = 0
	s.global = 0
}

// TotalLength returns the total number of frames the stream will produce.
func (s *Stream) TotalLength() int {
	n := 0
	for _, seg := range s.segments {
		n += seg.Length
	}
	return n
}

// DriftPoints returns the global frame index at which each segment after
// the first begins — the ground-truth drift frames θ.
func (s *Stream) DriftPoints() []int {
	pts := make([]int, 0, len(s.segments)-1)
	acc := 0
	for i, seg := range s.segments {
		if i > 0 {
			pts = append(pts, acc)
		}
		acc += seg.Length
	}
	return pts
}

// SegmentNames returns the condition names of the segments in order.
func (s *Stream) SegmentNames() []string {
	names := make([]string, len(s.segments))
	for i, seg := range s.segments {
		names[i] = seg.Cond.Name
	}
	return names
}

// Next returns the next frame and true, or a zero Frame and false when the
// script is exhausted. Frame indices are global stream positions.
func (s *Stream) Next() (Frame, bool) {
	for s.seg < len(s.segments) && s.pos >= s.segments[s.seg].Length {
		s.seg++
		s.pos = 0
		if s.seg >= len(s.segments) {
			break
		}
		next := s.segments[s.seg]
		if next.TransitionLen > 0 {
			// Gradual: keep the generator (objects persist), interpolate in
			// Next below.
		} else {
			// Abrupt: a hard cut to a new scene.
			s.gen = NewSceneGenerator(next.Cond, s.w, s.h, s.rng.Split())
		}
	}
	if s.seg >= len(s.segments) {
		return Frame{}, false
	}
	seg := s.segments[s.seg]
	if seg.TransitionLen > 0 && s.pos < seg.TransitionLen && s.seg > 0 {
		t := float64(s.pos+1) / float64(seg.TransitionLen)
		s.gen.SetCondition(Lerp(s.segments[s.seg-1].Cond, seg.Cond, t))
	} else {
		s.gen.SetCondition(seg.Cond)
	}
	f := s.gen.Next()
	f.Index = s.global
	s.pos++
	s.global++
	return f, true
}

// Collect materializes up to n frames from the stream's current position
// (all remaining frames when n < 0).
func (s *Stream) Collect(n int) []Frame {
	var out []Frame
	for n < 0 || len(out) < n {
		f, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}

// GenerateTraining renders n training frames under cond — the training
// data T_i associated with a provisioned model. A fresh generator with a
// burn-in period is used so the sample reflects the condition's steady
// state rather than any particular stream run, and frames are taken every
// few steps so the sample spans several traffic-burst cycles (the paper
// trains on 3 minutes of video, far longer than the burst correlation
// time; a short consecutive clip would miss the count tail and produce
// conformal false alarms on every live burst).
func GenerateTraining(cond Condition, w, h, n int, seed int64) []Frame {
	return GenerateTrainingStride(cond, w, h, n, 5, seed)
}

// GenerateTrainingStride is GenerateTraining with an explicit temporal
// stride between retained frames (stride 1 = consecutive clip).
func GenerateTrainingStride(cond Condition, w, h, n, stride int, seed int64) []Frame {
	if stride < 1 {
		stride = 1
	}
	g := NewSceneGenerator(cond, w, h, stats.NewRNG(seed))
	for i := 0; i < 20; i++ { // burn-in
		g.Next()
	}
	out := make([]Frame, n)
	for i := range out {
		for s := 1; s < stride; s++ {
			g.Next()
		}
		out[i] = g.Next()
	}
	return out
}
