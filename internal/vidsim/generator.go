package vidsim

import (
	"math"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// SceneGenerator renders a temporally correlated sequence of frames from a
// Condition: objects persist and move across frames, the global background
// brightness follows an AR(1) process, and traffic intensity is an AR(1)
// multiplier producing the bursty counts real traffic video shows. It is
// not safe for concurrent use.
type SceneGenerator struct {
	cond Condition
	w, h int
	rng  *stats.RNG

	bg      float64 // AR(1) background state
	traffic float64 // AR(1) traffic multiplier around 1
	objects []movingObject
	frame   int
}

type movingObject struct {
	obj Object
	vx  float64
}

// NewSceneGenerator creates a generator for w×h frames under cond, seeded
// from rng. The initial object population is drawn at the condition's
// steady state so the first frame is already typical of the distribution.
func NewSceneGenerator(cond Condition, w, h int, rng *stats.RNG) *SceneGenerator {
	g := &SceneGenerator{cond: cond, w: w, h: h, rng: rng, bg: cond.Background, traffic: 1}
	// Steady-state initial population.
	n := rng.Poisson(cond.CarRate + cond.BusRate)
	for i := 0; i < n; i++ {
		o := g.spawn()
		o.obj.X = rng.Uniform(0, float64(w))
		g.objects = append(g.objects, o)
	}
	return g
}

// Condition returns the generator's current condition.
func (g *SceneGenerator) Condition() Condition { return g.cond }

// SetCondition replaces the generator's condition. Existing objects
// persist (their appearance was fixed at spawn), so repeatedly nudging the
// condition produces a gradual drift, while a large jump produces an
// abrupt one.
func (g *SceneGenerator) SetCondition(cond Condition) { g.cond = cond }

// spawn draws a new object entering at the upstream edge.
func (g *SceneGenerator) spawn() movingObject {
	c := g.cond
	isBus := g.rng.Bernoulli(c.BusRate / math.Max(c.CarRate+c.BusRate, 1e-9))
	var o Object
	if isBus {
		o.Class = Bus
		o.W = (8 + g.rng.Normal(0, 0.8)) * c.ObjScale
		o.H = (4 + g.rng.Normal(0, 0.4)) * c.ObjScale
		o.Intensity = c.BusIntensity + g.rng.Normal(0, c.ObjNoise)
	} else {
		o.Class = Car
		o.W = (5 + g.rng.Normal(0, 0.6)) * c.ObjScale
		o.H = (3 + g.rng.Normal(0, 0.3)) * c.ObjScale
		o.Intensity = c.CarIntensity + g.rng.Normal(0, c.ObjNoise)
	}
	o.W = math.Max(o.W, 2)
	o.H = math.Max(o.H, 1.5)
	o.Intensity = clamp01(o.Intensity)
	o.Y = g.rng.Uniform(c.BandLo, c.BandHi) * float64(g.h)
	vx := c.SpeedX + g.rng.Normal(0, c.SpeedVar)
	if vx == 0 {
		vx = 0.5
	}
	if vx > 0 {
		o.X = -o.W / 2
	} else {
		o.X = float64(g.w) + o.W/2
	}
	return movingObject{obj: o, vx: vx}
}

// step advances dynamics by one frame: AR(1) states, object motion,
// despawn, and Poisson arrivals at the condition's steady-state rate.
func (g *SceneGenerator) step() {
	c := g.cond
	// AR(1) background brightness around the condition mean.
	g.bg += 0.1*(c.Background-g.bg) + g.rng.Normal(0, c.BgDrift)
	g.bg = clamp01(g.bg)
	// AR(1) traffic multiplier around 1 (overdispersion knob; its
	// stationary spread scales with Burst and produces the heavy
	// objects-per-frame std of Table 5). The reversion rate keeps the
	// burst correlation time near ~17 frames, so evaluation windows of a
	// few hundred frames mix over many burst cycles.
	g.traffic += 0.06*(1-g.traffic) + g.rng.Normal(0, 0.075*c.Burst)
	g.traffic = math.Max(g.traffic, 0.1)

	// Move and cull.
	kept := g.objects[:0]
	departed := 0
	for _, m := range g.objects {
		m.obj.X += m.vx
		if m.obj.Right() >= 0 && m.obj.Left() <= float64(g.w) {
			kept = append(kept, m)
		} else {
			departed++
		}
	}
	g.objects = kept

	// Arrivals: replace this frame's departures one-for-one and add a
	// deficit correction toward rate·traffic. The replacement term keeps
	// the stationary mean at the target (a pure deficit controller
	// equilibrates below it, by departures/gain); the AR(1) traffic
	// multiplier and the Poisson arrivals supply the burstiness real
	// traffic shows.
	target := (c.CarRate + c.BusRate) * g.traffic
	lambda := float64(departed)
	if deficit := target - float64(len(g.objects)); deficit > 0 {
		lambda += 0.2 * deficit
	}
	for i := 0; i < g.rng.Poisson(lambda); i++ {
		g.objects = append(g.objects, g.spawn())
	}
}

// Next renders and returns the next frame in the sequence.
func (g *SceneGenerator) Next() Frame {
	g.step()
	c := g.cond
	px := make(tensor.Vector, g.w*g.h)
	for i := range px {
		px[i] = clamp01(g.bg + g.rng.Normal(0, c.BgNoise))
	}
	truth := make([]Object, 0, len(g.objects))
	for _, m := range g.objects {
		g.drawRect(px, m.obj)
		truth = append(truth, m.obj)
	}
	g.applyWeather(px)
	f := Frame{Index: g.frame, W: g.w, H: g.h, Pixels: px, Truth: truth, Condition: c.Name}
	g.frame++
	return f
}

// drawRect rasterizes an object's bounding box at its intensity with a
// little per-pixel noise. The painted extent is round(W)×round(H) pixels,
// so rendered sizes match the nominal object geometry that detector
// templates are built from.
func (g *SceneGenerator) drawRect(px tensor.Vector, o Object) {
	x0 := int(math.Round(o.Left()))
	y0 := int(math.Round(o.Top()))
	x1 := x0 + int(math.Round(o.W)) - 1
	y1 := y0 + int(math.Round(o.H)) - 1
	x0 = max(x0, 0)
	y0 = max(y0, 0)
	x1 = min(x1, g.w-1)
	y1 = min(y1, g.h-1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			px[y*g.w+x] = clamp01(o.Intensity + g.rng.Normal(0, g.cond.ObjNoise/2))
		}
	}
}

// applyWeather adds the condition's weather effect in place.
func (g *SceneGenerator) applyWeather(px tensor.Vector) {
	c := g.cond
	if c.Weather == Clear || c.WeatherIx <= 0 {
		return
	}
	switch c.Weather {
	case Rain:
		// Diagonal bright streaks.
		streaks := int(c.WeatherIx * float64(g.w) / 3)
		for s := 0; s < streaks; s++ {
			x := g.rng.Intn(g.w)
			y := g.rng.Intn(g.h)
			length := 3 + g.rng.Intn(4)
			for k := 0; k < length; k++ {
				xx, yy := x+k, y+k
				if xx < g.w && yy < g.h {
					i := yy*g.w + xx
					px[i] = clamp01(px[i] + 0.25*c.WeatherIx)
				}
			}
		}
	case Snow:
		// Random bright speckles.
		flakes := int(c.WeatherIx * float64(len(px)) * 0.02)
		for s := 0; s < flakes; s++ {
			i := g.rng.Intn(len(px))
			px[i] = clamp01(px[i] + 0.35)
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
