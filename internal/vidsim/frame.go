package vidsim

import "videodrift/internal/tensor"

// Class labels the two object categories the paper's queries reference.
type Class int

// Object classes.
const (
	Car Class = iota
	Bus
)

// String returns the class name.
func (c Class) String() string {
	if c == Bus {
		return "bus"
	}
	return "car"
}

// Object is one rendered scene object with its ground-truth geometry.
// Coordinates are pixel-space centers; W and H are full extents.
type Object struct {
	Class     Class
	X, Y      float64
	W, H      float64
	Intensity float64
}

// Left returns the left edge of the object's bounding box.
func (o Object) Left() float64 { return o.X - o.W/2 }

// Right returns the right edge of the object's bounding box.
func (o Object) Right() float64 { return o.X + o.W/2 }

// Top returns the top edge of the object's bounding box.
func (o Object) Top() float64 { return o.Y - o.H/2 }

// Bottom returns the bottom edge of the object's bounding box.
func (o Object) Bottom() float64 { return o.Y + o.H/2 }

// Frame is one rendered video frame. Pixels is a row-major W×H grayscale
// image flattened to [0,1] values — the "multidimensional vector" of the
// paper's problem statement. Truth carries the generator's ground-truth
// scene state; production code paths never read it (annotation goes
// through detect.Oracle, mirroring the paper where Mask R-CNN output
// defines ground truth), but tests and the drift-point bookkeeping do.
type Frame struct {
	Index     int
	W, H      int
	Pixels    tensor.Vector
	Truth     []Object
	Condition string
}

// At returns the pixel value at column x, row y.
func (f *Frame) At(x, y int) float64 { return f.Pixels[y*f.W+x] }

// CountClass returns the number of ground-truth objects of class c whose
// center lies inside the frame.
func (f *Frame) CountClass(c Class) int {
	n := 0
	for _, o := range f.Truth {
		if o.Class == c && o.X >= 0 && o.X < float64(f.W) && o.Y >= 0 && o.Y < float64(f.H) {
			n++
		}
	}
	return n
}
