package ingest

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videodrift"
	"videodrift/internal/faults"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// loopbackStreams builds per-tenant drifting streams (day → night at
// tenant-specific offsets), the multi-tenant sibling of the root
// package's batching fixture.
func loopbackStreams(n int) map[string][]vidsim.Frame {
	streams := make(map[string][]vidsim.Frame, n)
	tenants := []string{"cam-a", "cam-b", "cam-c", "cam-d"}
	for i := 0; i < n; i++ {
		seed := int64(60 + 2*i)
		cut := 70 + 25*i
		streams[tenants[i]] = append(
			vidsim.GenerateTrainingStride(testCond(vidsim.Day()), 16, 16, cut, 1, seed),
			vidsim.GenerateTrainingStride(testCond(vidsim.Night()), 16, 16, 200-cut, 1, seed+1)...)
	}
	return streams
}

// dialRaw opens a plain TCP connection for hand-rolled wire traffic.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// fixedClock is the telemetry clock for bit-identical event
// comparison: wire and reference tracers stamp every event the same.
func fixedClock() time.Time { return time.Unix(0, 0) }

// runLoopback drives the full network path — ingest.Client over real
// TCP, Server, Router, dynamic fleet — for every tenant stream, with
// optional injected wire faults, and asserts the per-tenant outcome is
// bit-identical to in-process serial feeding: telemetry event streams,
// pipeline stats, and the deployed model. It returns the clients'
// aggregate stats.
func runLoopback(t *testing.T, streams map[string][]vidsim.Frame, faultSeed int64) ClientStats {
	t.Helper()
	models, opts := sharedModels()
	sm := videodrift.NewDynamicSharded(models, testLabeler, videodrift.ShardedOptions{
		Options: opts, Workers: 4,
	})
	router := NewRouter(sm, Config{
		QueueCap:  64,
		BatchSize: 8,
		NewTracer: func(string) *telemetry.Tracer {
			return telemetry.New(telemetry.Config{Now: fixedClock})
		},
	})
	srv := NewServer(router, ServerConfig{Logf: t.Logf})
	go srv.ListenAndServe("127.0.0.1:0")
	defer srv.Close()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	// One pump driver, as driftserve runs it.
	var pumpErr atomic.Value
	pumpDone := make(chan struct{})
	stopPump := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			if _, err := router.Pump(); err != nil {
				pumpErr.Store(err)
				return
			}
			select {
			case <-stopPump:
				return
			case <-time.After(500 * time.Microsecond):
			}
		}
	}()

	var mu sync.Mutex
	total := ClientStats{}
	var wg sync.WaitGroup
	for tenant, stream := range streams {
		wg.Add(1)
		go func(tenant string, stream []vidsim.Frame) {
			defer wg.Done()
			cfg := ClientConfig{Addr: srv.Addr().String(), Tenant: tenant}
			if faultSeed != 0 {
				sched := faults.GenerateNet(faultSeed+int64(len(tenant))+int64(tenant[4]), 3*len(stream), 0.05, 0.02)
				if len(sched.Faults) == 0 {
					t.Errorf("tenant %s: fault schedule is empty, the fault run would test nothing", tenant)
				}
				cfg.TxFault = faults.NewNetInjector(sched).Tx
			}
			c, err := Dial(cfg)
			if err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
				return
			}
			defer c.Close()
			for i, f := range stream {
				if err := c.Send(f); err != nil {
					t.Errorf("tenant %s frame %d: %v", tenant, i, err)
					return
				}
			}
			mu.Lock()
			s := c.Stats()
			total.Sent += s.Sent
			total.Acked += s.Acked
			total.Dups += s.Dups
			total.Nacks += s.Nacks
			total.Retries += s.Retries
			total.Reconnects += s.Reconnects
			mu.Unlock()
		}(tenant, stream)
	}
	wg.Wait()

	// Drain: every accepted frame must reach the fleet.
	want := int64(0)
	for _, stream := range streams {
		want += int64(len(stream))
	}
	deadline := time.Now().Add(30 * time.Second)
	for router.Stats().Processed < want {
		if err, _ := pumpErr.Load().(error); err != nil {
			t.Fatalf("pump failed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timed out: processed %d of %d accepted frames", router.Stats().Processed, want)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopPump)
	<-pumpDone
	if err, _ := pumpErr.Load().(error); err != nil {
		t.Fatalf("pump failed: %v", err)
	}

	rs := router.Stats()
	if rs.Accepted != want || rs.Processed != want {
		t.Fatalf("accepted %d processed %d, want %d — frames lost or duplicated", rs.Accepted, rs.Processed, want)
	}

	// Per tenant: replay the stream through a standalone serial Monitor
	// with the shard slot's seed, fed the float32-quantized frames the
	// wire delivers. Telemetry events, pipeline stats and the deployed
	// model must be bit-identical.
	for _, ts := range rs.Tenants {
		stream := streams[ts.Tenant]
		if ts.Slot < 0 {
			t.Fatalf("tenant %s detached after the run", ts.Tenant)
		}
		refTracer := telemetry.New(telemetry.Config{Now: fixedClock})
		shardOpts := opts
		shardOpts.Pipeline.Seed += int64(ts.Slot)
		shardOpts.Tracer = refTracer
		ref := videodrift.NewMonitor(models, testLabeler, shardOpts)
		for i, f := range stream {
			ref.Process(FrameFromMsg(MsgFromFrame(ts.Tenant, uint64(i), f)))
		}
		if got, wantM := sm.Shard(ts.Slot).Current(), ref.Current(); got != wantM {
			t.Errorf("tenant %s (slot %d): deployed %q, serial reference %q", ts.Tenant, ts.Slot, got, wantM)
		}
		if got, wantS := sm.ShardStats(ts.Slot), ref.Stats(); got != wantS {
			t.Errorf("tenant %s (slot %d): stats %+v, serial reference %+v", ts.Tenant, ts.Slot, got, wantS)
		}
		gotSnap := router.Tracer(ts.Tenant).Snapshot()
		wantSnap := refTracer.Snapshot()
		if gotSnap.Drifts == 0 {
			t.Errorf("tenant %s: no drift declared — the fixture stream never exercised detection", ts.Tenant)
		}
		if gotSnap.Drifts != wantSnap.Drifts || gotSnap.Selections != wantSnap.Selections ||
			gotSnap.Deployments != wantSnap.Deployments || gotSnap.ModelsTrained != wantSnap.ModelsTrained {
			t.Errorf("tenant %s: counters drift/sel/deploy/train %d/%d/%d/%d, reference %d/%d/%d/%d",
				ts.Tenant, gotSnap.Drifts, gotSnap.Selections, gotSnap.Deployments, gotSnap.ModelsTrained,
				wantSnap.Drifts, wantSnap.Selections, wantSnap.Deployments, wantSnap.ModelsTrained)
		}
		if !reflect.DeepEqual(gotSnap.Events, wantSnap.Events) {
			t.Errorf("tenant %s: telemetry event stream diverged from serial reference\nwire: %+v\nref:  %+v",
				ts.Tenant, gotSnap.Events, wantSnap.Events)
		}
	}
	return total
}

// TestLoopbackBitIdentical is the tier-0 acceptance test for the
// ingestion tier: frames delivered over real TCP produce, per tenant,
// the exact events and deployments in-process feeding produces.
func TestLoopbackBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("E2E loopback in -short mode")
	}
	s := runLoopback(t, loopbackStreams(3), 0)
	if s.Retries != 0 || s.Reconnects != 0 || s.Dups != 0 {
		t.Errorf("clean run had retries %d, reconnects %d, dups %d", s.Retries, s.Reconnects, s.Dups)
	}
}

// TestLoopbackBitIdenticalUnderFaults replays the same contract with
// injected wire faults — corrupted bytes and torn writes. The faults
// must actually fire (retries, reconnects) and must cost nothing:
// delivery is exactly-once, the outcome identical to a clean run's.
func TestLoopbackBitIdenticalUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("E2E loopback in -short mode")
	}
	s := runLoopback(t, loopbackStreams(3), 97)
	if s.Retries == 0 {
		t.Error("fault run never retried — injector did not engage")
	}
	if s.Reconnects == 0 {
		t.Error("fault run never reconnected — no torn write fired")
	}
	if s.Nacks == 0 {
		t.Error("fault run saw no NACKs — no corruption was rejected")
	}
}

// TestLoopbackBackpressure pins the end-to-end backpressure contract
// over the wire: with a tiny queue and no background pump, the server
// NACKs queue-full, the client backs off (its Sleep hook pumps, as a
// real deployment's pump cadence would), and every frame is eventually
// delivered exactly once — backpressure costs latency, never frames.
func TestLoopbackBackpressure(t *testing.T) {
	_, opts := sharedModels()
	sm := testFleet(opts)
	router := NewRouter(sm, Config{QueueCap: 4, BatchSize: 2, RetryAfter: time.Millisecond})
	srv := NewServer(router, ServerConfig{})
	go srv.ListenAndServe("127.0.0.1:0")
	defer srv.Close()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	stream := testStream(50, 77)
	c, err := Dial(ClientConfig{
		Addr:   srv.Addr().String(),
		Tenant: "cam-bp",
		Sleep: func(time.Duration) {
			if _, err := router.Pump(); err != nil {
				t.Error(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, f := range stream {
		if err := c.Send(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := router.Pump(); err != nil {
		t.Fatal(err)
	}
	s := router.Stats()
	if s.NackedFull == 0 || c.Stats().Nacks == 0 {
		t.Errorf("queue of 4 never filled over 50 frames (server nacked_full %d, client nacks %d)",
			s.NackedFull, c.Stats().Nacks)
	}
	if s.Accepted != 50 || s.Processed != 50 {
		t.Fatalf("accepted %d processed %d, want 50/50 — backpressure dropped frames", s.Accepted, s.Processed)
	}
}

// TestHTTPFallback pins the HTTP POST surface: the body is the same
// wire message, the verdicts map onto status codes.
func TestHTTPFallback(t *testing.T) {
	_, opts := sharedModels()
	router := NewRouter(testFleet(opts), Config{QueueCap: 1})
	hs := httptest.NewServer(NewServer(router, ServerConfig{}).HTTPHandler())
	defer hs.Close()
	stream := testStream(3, 78)

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(hs.URL, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(EncodeFrame(MsgFromFrame("cam-h", 0, stream[0]))); resp.StatusCode != http.StatusOK {
		t.Fatalf("first frame: HTTP %d", resp.StatusCode)
	}
	if resp := post(EncodeFrame(MsgFromFrame("cam-h", 0, stream[0]))); resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate frame: HTTP %d, want 200 (idempotent)", resp.StatusCode)
	}
	if resp := post(EncodeFrame(MsgFromFrame("cam-h", 5, stream[1]))); resp.StatusCode != http.StatusConflict {
		t.Fatalf("sequence gap: HTTP %d, want 409", resp.StatusCode)
	}
	// Queue cap 1, no pump: the second in-order frame is backpressured.
	resp := post(EncodeFrame(MsgFromFrame("cam-h", 1, stream[1])))
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("full queue: HTTP %d (Retry-After %q), want 429 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	wire := EncodeFrame(MsgFromFrame("cam-h", 2, stream[2]))
	wire[len(wire)-1] ^= 0x10
	if resp := post(wire); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post([]byte("GET / HTTP/1.0")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}
	if router.Stats().NackedMalformed != 2 {
		t.Errorf("malformed count %d, want 2", router.Stats().NackedMalformed)
	}
}

// TestServerSlowLoris pins the slow-client guard: a connection that
// sends half a header and stalls is cut after the read timeout instead
// of pinning its handler goroutine forever.
func TestServerSlowLoris(t *testing.T) {
	_, opts := sharedModels()
	router := NewRouter(testFleet(opts), Config{})
	srv := NewServer(router, ServerConfig{ReadTimeout: 50 * time.Millisecond})
	go srv.ListenAndServe("127.0.0.1:0")
	defer srv.Close()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	// A partial header, then silence.
	wire := EncodeFrame(MsgFromFrame("cam-slow", 0, testStream(1, 79)[0]))
	raw := dialRaw(t, srv.Addr().String())
	defer raw.Close()
	if _, err := raw.Write(wire[:HeaderSize/2]); err != nil {
		t.Fatal(err)
	}
	// The server must come back with a NACK and close, within the
	// timeout order of magnitude — not the 30s default.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, payload, err := ReadMsg(raw)
	if err != nil {
		t.Fatalf("expected a best-effort NACK before the cut: %v", err)
	}
	if typ != MsgNack {
		t.Fatalf("reply type %d, want NACK", typ)
	}
	if n, _ := DecodeNack(payload); n.Code != NackMalformed {
		t.Fatalf("nack code %d, want malformed", n.Code)
	}
	// The server stays healthy: a prompt client on the same server is
	// served normally after the slow one was cut.
	c, err := Dial(ClientConfig{
		Addr: srv.Addr().String(), Tenant: "cam-slow",
		ReplyTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(testStream(1, 80)[0]); err != nil {
		t.Fatalf("healthy client starved by the slow one: %v", err)
	}
}
