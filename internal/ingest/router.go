package ingest

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"videodrift"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// Router defaults.
const (
	DefaultMaxTenants = 64
	DefaultQueueCap   = 256
	DefaultBatchSize  = 8
	DefaultRetryAfter = 50 * time.Millisecond
)

// Config parameterizes a Router.
type Config struct {
	// MaxTenants bounds concurrently attached tenants (<= 0 means
	// DefaultMaxTenants). A frame from an unknown tenant beyond the
	// limit is NACKed with NackTenantLimit — never queued unboundedly.
	MaxTenants int
	// QueueCap bounds each tenant's frame queue (<= 0 means
	// DefaultQueueCap). A frame arriving at a full queue is NACKed with
	// NackQueueFull and a retry-after hint: explicit backpressure, no
	// silent drop, no unbounded buffering.
	QueueCap int
	// BatchSize is the per-shard micro-batch size Pump feeds the fleet
	// with (<= 0 means DefaultBatchSize).
	BatchSize int
	// IdleEvict detaches a tenant whose queue has been empty and whose
	// last frame is older than this (0 disables eviction). An evicted
	// tenant's sequence position is retained, so a returning tenant
	// resumes its stream on a fresh shard without seq disruption.
	IdleEvict time.Duration
	// RetryAfter is the backoff hint attached to queue-full and
	// tenant-limit NACKs (<= 0 means DefaultRetryAfter).
	RetryAfter time.Duration
	// Now is the router's clock, used only for idle-eviction and
	// retry-after bookkeeping — never for admission or drift decisions,
	// which keeps replay deterministic. Nil means time.Now.
	Now func() time.Time
	// NewTracer optionally builds a per-tenant telemetry tracer,
	// attached to the tenant's shard for its lifetime (re-used across
	// evict/reattach so the tenant's history survives). Nil shares the
	// fleet's base tracer.
	NewTracer func(tenant string) *telemetry.Tracer
	// ResumeStreams makes a brand-new tenant's first frame define its
	// stream position instead of requiring seq 0 — the promoted-standby
	// case, where clients fail over mid-stream to a server that has
	// never seen them. Only tenant creation adopts the sequence; a
	// returning evicted tenant still resumes its retained position, so
	// the exactly-once contract within one server's lifetime holds.
	ResumeStreams bool
}

// Router owns the tenant↔shard mapping over a dynamic ShardedMonitor:
// per-tenant bounded queues on the ingress side, the count-based
// Batcher on the egress side. Submit (any connection goroutine) and
// Pump (one driver goroutine) are safe to call concurrently.
//
// The backpressure contract: a submitted frame is either queued (and
// eventually processed, exactly once, in sequence order) or rejected
// with a typed verdict the sender sees. Nothing in the router drops a
// frame silently, and no queue grows without bound.
type Router struct {
	sm  *videodrift.ShardedMonitor
	cfg Config

	// mu guards the tenant table and queues (Submit side).
	mu      sync.Mutex
	tenants map[string]*tenant

	// procMu serializes Pump: queue drain, batch feed, idle eviction.
	procMu  sync.Mutex
	batcher *videodrift.Batcher

	// Aggregate counters (under mu).
	accepted, processed      int64
	dups                     int64
	nackFull, nackSeq        int64
	nackLimit, nackMalformed int64
	evictions, attaches      int64
}

// tenant is one stream's routing state. slot == -1 while detached
// (idle-evicted); nextSeq persists across evictions so the stream's
// exactly-once contract survives reattachment.
type tenant struct {
	id       string
	slot     int
	nextSeq  uint64
	queue    []vidsim.Frame
	lastSeen time.Time
	tracer   *telemetry.Tracer

	accepted, processed int64
	dups                int64
	nackFull, nackSeq   int64
}

// NewRouter builds a router over a fleet. The fleet should be a
// dynamic one (videodrift.NewDynamicSharded); attaching tenants to a
// fixed fleet works but competes with its preallocated slots.
func NewRouter(sm *videodrift.ShardedMonitor, cfg Config) *Router {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Router{
		sm:      sm,
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		batcher: sm.NewBatcher(cfg.BatchSize),
	}
}

// Verdict is the router's decision on one submitted frame — what the
// server turns into an Ack or Nack on the wire.
type Verdict struct {
	// Ack reports the frame was queued (or, with Dup, already
	// processed — the idempotent accept for a resend after a lost ack).
	Ack bool
	Dup bool
	// Code, RetryAfter and Reason describe the rejection when !Ack.
	Code       uint8
	RetryAfter time.Duration
	Reason     string
}

// Submit routes one decoded frame. First contact with an unknown
// tenant attaches a shard over the shared models (the dynamic-fleet
// lifecycle); a returning evicted tenant reattaches. Safe for
// concurrent use by connection handlers.
func (r *Router) Submit(m FrameMsg) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[m.Tenant]
	if t == nil || t.slot < 0 {
		if r.activeLocked() >= r.cfg.MaxTenants {
			r.nackLimit++
			return Verdict{
				Code:       NackTenantLimit,
				RetryAfter: r.cfg.RetryAfter,
				Reason:     fmt.Sprintf("fleet at max tenants (%d)", r.cfg.MaxTenants),
			}
		}
		if t == nil {
			t = &tenant{id: m.Tenant, slot: -1}
			if r.cfg.ResumeStreams {
				// A failed-over client arrives mid-stream; its first frame's
				// sequence number becomes this tenant's stream position.
				t.nextSeq = m.Seq
			}
			if r.cfg.NewTracer != nil {
				t.tracer = r.cfg.NewTracer(m.Tenant)
			}
			r.tenants[m.Tenant] = t
		}
		slot, err := r.sm.Attach(t.tracer)
		if err != nil {
			return Verdict{Code: NackInternal, Reason: err.Error()}
		}
		t.slot = slot
		r.attaches++
	}
	t.lastSeen = r.cfg.Now()
	switch {
	case m.Seq < t.nextSeq:
		// A resend of a frame we already accepted (its ack was lost):
		// acknowledge idempotently so the sender advances.
		t.dups++
		r.dups++
		return Verdict{Ack: true, Dup: true}
	case m.Seq > t.nextSeq:
		t.nackSeq++
		r.nackSeq++
		return Verdict{
			Code:   NackBadSeq,
			Reason: fmt.Sprintf("want seq %d, got %d", t.nextSeq, m.Seq),
		}
	}
	if len(t.queue) >= r.cfg.QueueCap {
		t.nackFull++
		r.nackFull++
		return Verdict{
			Code:       NackQueueFull,
			RetryAfter: r.cfg.RetryAfter,
			Reason:     fmt.Sprintf("tenant queue full (%d)", r.cfg.QueueCap),
		}
	}
	t.queue = append(t.queue, FrameFromMsg(m))
	t.nextSeq++
	t.accepted++
	r.accepted++
	return Verdict{Ack: true}
}

// activeLocked counts attached tenants. Callers hold r.mu.
func (r *Router) activeLocked() int {
	n := 0
	for _, t := range r.tenants { //lint:allow determinism counting attached tenants is commutative
		if t.slot >= 0 {
			n++
		}
	}
	return n
}

// CountMalformed records a frame the server rejected before it reached
// the router (decode failure), so drop accounting stays complete.
func (r *Router) CountMalformed() {
	r.mu.Lock()
	r.nackMalformed++
	r.mu.Unlock()
}

// Pump drains every tenant queue through the fleet: frames feed the
// count-based Batcher in sorted tenant order (deterministic for any
// map layout), flush into ProcessBatches, and idle tenants detach.
// Call it from one driver goroutine on a steady cadence; it returns
// the number of frames processed this call. A *BatchMismatchError from
// a concurrent Attach is retried internally (the Batcher keeps its
// queues), so no frame is lost to a slot-count race.
func (r *Router) Pump() (int, error) {
	r.procMu.Lock()
	defer r.procMu.Unlock()

	// Move queued frames out under mu, then feed without holding it so
	// Submit never blocks on the fleet.
	r.mu.Lock()
	type drained struct {
		t      *tenant
		slot   int
		frames []vidsim.Frame
	}
	var work []drained
	for _, id := range r.sortedTenantsLocked() {
		t := r.tenants[id]
		if len(t.queue) == 0 || t.slot < 0 {
			continue
		}
		work = append(work, drained{t: t, slot: t.slot, frames: t.queue})
		t.queue = nil
	}
	r.mu.Unlock()

	total := 0
	flush := func(evs [][]videodrift.Event, err error) error {
		if err != nil {
			return err
		}
		for _, shard := range evs {
			total += len(shard)
		}
		return nil
	}
	for _, w := range work {
		for _, f := range w.frames {
			if err := flush(r.batcher.Add(w.slot, f)); err != nil {
				if err := r.retryFlush(flush, err); err != nil {
					return total, err
				}
			}
		}
	}
	if err := flush(r.batcher.Flush()); err != nil {
		if err := r.retryFlush(flush, err); err != nil {
			return total, err
		}
	}

	r.mu.Lock()
	r.processed += int64(total)
	for _, w := range work {
		w.t.processed += int64(len(w.frames))
	}
	now := r.cfg.Now()
	if r.cfg.IdleEvict > 0 {
		for _, id := range r.sortedTenantsLocked() {
			t := r.tenants[id]
			if t.slot < 0 || len(t.queue) > 0 || now.Sub(t.lastSeen) < r.cfg.IdleEvict {
				continue
			}
			if err := r.sm.Detach(t.slot); err == nil {
				t.slot = -1
				r.evictions++
			}
		}
	}
	r.mu.Unlock()
	return total, nil
}

// retryFlush re-runs a failed batcher flush: a BatchMismatchError
// means a tenant attached between queueing and flushing, and Flush
// pads to the new slot count on the retry. Anything else (or a retry
// that keeps failing) is a real fault.
func (r *Router) retryFlush(flush func([][]videodrift.Event, error) error, err error) error {
	var mismatch *videodrift.BatchMismatchError
	for attempt := 0; attempt < 3 && errors.As(err, &mismatch); attempt++ {
		if err = flush(r.batcher.Flush()); err == nil {
			return nil
		}
	}
	return err
}

// sortedTenantsLocked returns the tenant ids in sorted order. Callers
// hold r.mu.
func (r *Router) sortedTenantsLocked() []string {
	ids := make([]string, 0, len(r.tenants))
	for id := range r.tenants { //lint:allow determinism ids are sorted before use
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TenantStats is one tenant's ingestion counters.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Slot is the tenant's shard slot, -1 while idle-evicted.
	Slot int `json:"slot"`
	// Queued is the current queue depth; QueueCap its bound.
	Queued   int `json:"queued"`
	QueueCap int `json:"queue_cap"`
	// Accepted counts frames queued; Processed frames that reached the
	// fleet; Dups idempotent re-acks; NackedFull backpressure
	// rejections; NackedSeq sequence-gap rejections.
	Accepted   int64 `json:"accepted"`
	Processed  int64 `json:"processed"`
	Dups       int64 `json:"dups"`
	NackedFull int64 `json:"nacked_full"`
	NackedSeq  int64 `json:"nacked_seq"`
}

// Stats is the router's aggregate view, for /healthz and /metrics.
type Stats struct {
	// Known is every tenant ever seen; Active the currently attached.
	Known  int `json:"known_tenants"`
	Active int `json:"active_tenants"`
	// Aggregate counters across tenants.
	Accepted        int64 `json:"accepted"`
	Processed       int64 `json:"processed"`
	Dups            int64 `json:"dups"`
	NackedFull      int64 `json:"nacked_full"`
	NackedSeq       int64 `json:"nacked_seq"`
	NackedLimit     int64 `json:"nacked_limit"`
	NackedMalformed int64 `json:"nacked_malformed"`
	Attaches        int64 `json:"attaches"`
	Evictions       int64 `json:"evictions"`
	// Tenants holds the per-tenant detail, sorted by tenant id.
	Tenants []TenantStats `json:"tenants"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Known:           len(r.tenants),
		Active:          r.activeLocked(),
		Accepted:        r.accepted,
		Processed:       r.processed,
		Dups:            r.dups,
		NackedFull:      r.nackFull,
		NackedSeq:       r.nackSeq,
		NackedLimit:     r.nackLimit,
		NackedMalformed: r.nackMalformed,
		Attaches:        r.attaches,
		Evictions:       r.evictions,
	}
	for _, id := range r.sortedTenantsLocked() {
		t := r.tenants[id]
		s.Tenants = append(s.Tenants, TenantStats{
			Tenant:     t.id,
			Slot:       t.slot,
			Queued:     len(t.queue),
			QueueCap:   r.cfg.QueueCap,
			Accepted:   t.accepted,
			Processed:  t.processed,
			Dups:       t.dups,
			NackedFull: t.nackFull,
			NackedSeq:  t.nackSeq,
		})
	}
	return s
}

// Tracer returns the tenant's telemetry tracer (nil when unknown or
// when the router shares the fleet's base tracer).
func (r *Router) Tracer(tenant string) *telemetry.Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.tenants[tenant]; t != nil {
		return t.tracer
	}
	return nil
}

// WritePrometheus emits the router's counters in Prometheus
// text-exposition format, prefixed ingest_.
func (r *Router) WritePrometheus(w io.Writer) error {
	s := r.Stats()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE ingest_tenants_known gauge\ningest_tenants_known %d\n", s.Known)
	p("# TYPE ingest_tenants_active gauge\ningest_tenants_active %d\n", s.Active)
	p("# TYPE ingest_frames_accepted_total counter\ningest_frames_accepted_total %d\n", s.Accepted)
	p("# TYPE ingest_frames_processed_total counter\ningest_frames_processed_total %d\n", s.Processed)
	p("# TYPE ingest_frames_dup_total counter\ningest_frames_dup_total %d\n", s.Dups)
	p("# TYPE ingest_nack_total counter\n")
	p("ingest_nack_total{code=\"queue_full\"} %d\n", s.NackedFull)
	p("ingest_nack_total{code=\"bad_seq\"} %d\n", s.NackedSeq)
	p("ingest_nack_total{code=\"tenant_limit\"} %d\n", s.NackedLimit)
	p("ingest_nack_total{code=\"malformed\"} %d\n", s.NackedMalformed)
	p("# TYPE ingest_tenant_attach_total counter\ningest_tenant_attach_total %d\n", s.Attaches)
	p("# TYPE ingest_tenant_evict_total counter\ningest_tenant_evict_total %d\n", s.Evictions)
	p("# TYPE ingest_tenant_queue_depth gauge\n")
	for _, t := range s.Tenants {
		p("ingest_tenant_queue_depth{tenant=%q} %d\n", t.Tenant, t.Queued)
	}
	return err
}
