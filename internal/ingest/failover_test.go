package ingest

import (
	"strings"
	"testing"
	"time"
)

// TestRouterResumeStreams pins the promoted-standby admission rule: a
// brand-new tenant's first frame defines its stream position instead of
// being forced to seq 0, but only at tenant creation — a returning
// evicted tenant still resumes the position the router retained.
func TestRouterResumeStreams(t *testing.T) {
	_, opts := sharedModels()
	now := time.Unix(3000, 0)
	r := NewRouter(testFleet(opts), Config{
		ResumeStreams: true, IdleEvict: time.Minute,
		Now: func() time.Time { return now },
	})
	stream := testStream(12, 21)

	// A failed-over client arrives mid-stream at seq 7.
	if v := r.Submit(MsgFromFrame("cam-a", 7, stream[7])); !v.Ack || v.Dup {
		t.Fatalf("mid-stream first contact: verdict %+v, want clean ack", v)
	}
	submitFrames(t, r, "cam-a", stream, 8, 10)
	// Behind the adopted position is a dup, ahead is still a gap.
	if v := r.Submit(MsgFromFrame("cam-a", 7, stream[7])); !v.Ack || !v.Dup {
		t.Fatalf("replay below adopted seq: verdict %+v, want dup ack", v)
	}
	if v := r.Submit(MsgFromFrame("cam-a", 11, stream[11])); v.Ack || v.Code != NackBadSeq ||
		!strings.Contains(v.Reason, "want seq 10, got 11") {
		t.Fatalf("gap above adopted seq: verdict %+v, want NackBadSeq naming seq 10", v)
	}

	// Evict the tenant; its return must NOT re-adopt an arbitrary seq —
	// the retained position still governs.
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Evictions != 1 || s.Active != 0 {
		t.Fatalf("eviction setup failed: %+v", s)
	}
	if v := r.Submit(MsgFromFrame("cam-a", 11, stream[11])); v.Ack || v.Code != NackBadSeq {
		t.Fatalf("returning evicted tenant adopted a gap: verdict %+v", v)
	}
	submitFrames(t, r, "cam-a", stream, 10, 12)

	// Without ResumeStreams, mid-stream first contact is still a gap.
	strict := NewRouter(testFleet(opts), Config{})
	if v := strict.Submit(MsgFromFrame("cam-b", 7, stream[7])); v.Ack || v.Code != NackBadSeq ||
		!strings.Contains(v.Reason, "want seq 0, got 7") {
		t.Fatalf("strict router accepted mid-stream first contact: %+v", v)
	}
}

// TestClientFailover drives the wire-level failover path: a client
// configured with two addresses streams to the primary, the primary is
// killed mid-stream, and the client rotates to the standby and resumes
// its sequence there — no frame lost, no sequence disruption, because
// the standby's router runs with ResumeStreams.
func TestClientFailover(t *testing.T) {
	_, opts := sharedModels()

	primary := NewServer(NewRouter(testFleet(opts), Config{}), ServerConfig{Logf: t.Logf})
	go primary.ListenAndServe("127.0.0.1:0")
	for primary.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	standbyRouter := NewRouter(testFleet(opts), Config{ResumeStreams: true})
	standbySrv := NewServer(standbyRouter, ServerConfig{Logf: t.Logf})
	go standbySrv.ListenAndServe("127.0.0.1:0")
	defer standbySrv.Close()
	for standbySrv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	stream := testStream(20, 22)
	c, err := Dial(ClientConfig{
		Addr:   primary.Addr().String() + "," + standbySrv.Addr().String(),
		Tenant: "cam-a",
		Sleep:  func(time.Duration) {}, // no wall-clock waits in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 8; i++ {
		if err := c.Send(stream[i]); err != nil {
			t.Fatalf("frame %d (primary): %v", i, err)
		}
	}
	if got := c.Stats().Failovers; got != 0 {
		t.Fatalf("healthy primary: %d failovers, want 0", got)
	}

	// kill -9 the primary: every connection drops, new dials are refused.
	primary.Close()

	for i := 8; i < 20; i++ {
		if err := c.Send(stream[i]); err != nil {
			t.Fatalf("frame %d (after failover): %v", i, err)
		}
	}
	st := c.Stats()
	if st.Failovers < 1 {
		t.Fatalf("stats %+v, want at least one failover", st)
	}
	if st.Acked != 20 {
		t.Fatalf("acked %d frames, want all 20", st.Acked)
	}

	// The standby adopted the stream mid-sequence: exactly the frames
	// sent after the kill, starting at the in-flight sequence number.
	ss := standbyRouter.Stats()
	if ss.Accepted != 12 || len(ss.Tenants) != 1 || ss.Tenants[0].Tenant != "cam-a" {
		t.Fatalf("standby accepted %d frames from %d tenants, want 12 from cam-a", ss.Accepted, len(ss.Tenants))
	}
	if v := standbyRouter.Submit(MsgFromFrame("cam-a", 19, stream[19])); !v.Ack || !v.Dup {
		t.Fatalf("standby lost the adopted sequence position: %+v", v)
	}
}
