package ingest

import (
	"testing"

	"videodrift/internal/analysis/leakcheck"
)

// TestMain gates the package on the leakcheck harness (DESIGN.md §15):
// every server accept loop, per-connection handler and router pump
// spawned by a test must be stopped by that test's cleanup — a leak
// the static goroleak pass cannot see (or was told to waive) still
// fails here. The shared parallel pools' parked workers (spun up by
// the monitors the loopback tests drive) are process-lifetime by
// design and are waived by name.
func TestMain(m *testing.M) {
	leakcheck.Main(m,
		leakcheck.Allow("videodrift/internal/parallel.(*Pool).spawn.func1"))
}
