package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// DefaultReadTimeout bounds how long the server waits for one complete
// message — the slow-loris guard: a connection that trickles bytes
// slower than a message per timeout is cut, it cannot pin a handler
// goroutine forever.
const DefaultReadTimeout = 30 * time.Second

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// ReadTimeout is the per-message read deadline (<= 0 means
	// DefaultReadTimeout).
	ReadTimeout time.Duration
	// Now is the deadline clock (nil means time.Now).
	Now func() time.Time
	// Logf logs connection-level faults (nil is silent).
	Logf func(format string, args ...interface{})
}

// Server accepts tenant connections speaking the wire protocol and
// routes their frames. Each connection is one goroutine running a
// strict request/response loop: read one message, answer one Ack or
// Nack. Header-level damage (bad magic, truncation, version skew)
// desynchronizes the stream, so those close the connection after a
// best-effort Nack; payload-level damage (CRC mismatch, malformed
// frame) leaves the stream aligned, so those Nack and keep reading —
// a client with one corrupted frame does not lose its connection.
type Server struct {
	router *Router
	cfg    ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server over a router.
func NewServer(r *Router, cfg ServerConfig) *Server {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Server{router: r, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns { //lint:allow determinism closing every connection is order-independent
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// serveConn runs one connection's request/response loop.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		conn.SetReadDeadline(s.cfg.Now().Add(s.cfg.ReadTimeout))
		msgType, payload, err := s.readMsg(conn)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return // clean close between messages
		case errors.Is(err, ErrChecksum):
			// The stream is still aligned (the declared payload was fully
			// read); reject the frame, keep the connection.
			s.router.CountMalformed()
			s.writeMsg(conn, EncodeNack(Nack{Code: NackMalformed, Reason: "payload checksum mismatch"}))
			continue
		default:
			// Header damage, truncation, version skew, oversize, timeout:
			// the stream position is unknowable — best-effort Nack, drop
			// the connection.
			s.router.CountMalformed()
			s.logf("ingest: dropping connection %s: %v", conn.RemoteAddr(), err)
			s.writeMsg(conn, EncodeNack(Nack{Code: NackMalformed, Reason: err.Error()}))
			return
		}
		if msgType != MsgFrame {
			s.writeMsg(conn, EncodeNack(Nack{Code: NackMalformed,
				Reason: fmt.Sprintf("unexpected message type %d", msgType)}))
			continue
		}
		m, err := DecodeFrameMsg(payload)
		if err != nil {
			s.router.CountMalformed()
			s.writeMsg(conn, EncodeNack(Nack{Code: NackMalformed, Reason: err.Error()}))
			continue
		}
		if !s.writeMsg(conn, verdictWire(m.Seq, s.router.Submit(m))) {
			return
		}
	}
}

// readMsg reads one message, mapping a read-deadline miss to a typed
// slow-client error.
func (s *Server) readMsg(conn net.Conn) (uint8, []byte, error) {
	msgType, payload, err := ReadMsg(conn)
	var ne net.Error
	if err != nil && errors.As(err, &ne) && ne.Timeout() {
		return 0, nil, fmt.Errorf("no complete message within %v (slow client)", s.cfg.ReadTimeout)
	}
	return msgType, payload, err
}

// writeMsg writes one wire message, reporting whether the connection
// is still usable.
func (s *Server) writeMsg(conn net.Conn, b []byte) bool {
	if _, err := conn.Write(b); err != nil {
		s.logf("ingest: write to %s: %v", conn.RemoteAddr(), err)
		return false
	}
	return true
}

// verdictWire renders a router verdict as the wire response for seq.
func verdictWire(seq uint64, v Verdict) []byte {
	if v.Ack {
		return EncodeAck(Ack{Seq: seq, Dup: v.Dup})
	}
	return EncodeNack(Nack{
		Seq:              seq,
		Code:             v.Code,
		RetryAfterMillis: uint32(v.RetryAfter / time.Millisecond),
		Reason:           v.Reason,
	})
}

// HTTPHandler is the HTTP POST fallback: the request body is one
// complete wire frame message (header + payload, exactly the bytes a
// TCP client writes), the response maps the verdict onto HTTP status
// codes — 200 accepted, 400 malformed, 409 sequence gap, 429 queue
// full (with Retry-After), 503 tenant limit (with Retry-After).
// Integrity still rides on the protocol CRC, so a proxy that mangles
// bodies is caught the same way a flaky wire is.
func (s *Server) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST one wire frame message", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, HeaderSize+MaxPayload+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		msgType, payload, err := DecodeMsg(body)
		if err != nil {
			s.router.CountMalformed()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if msgType != MsgFrame {
			http.Error(w, fmt.Sprintf("unexpected message type %d", msgType), http.StatusBadRequest)
			return
		}
		m, err := DecodeFrameMsg(payload)
		if err != nil {
			s.router.CountMalformed()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v := s.router.Submit(m)
		w.Header().Set("Content-Type", "application/json")
		if !v.Ack {
			if v.RetryAfter > 0 {
				secs := int((v.RetryAfter + time.Second - 1) / time.Second)
				w.Header().Set("Retry-After", fmt.Sprint(secs))
			}
			code := http.StatusBadRequest
			switch v.Code {
			case NackQueueFull:
				code = http.StatusTooManyRequests
			case NackTenantLimit:
				code = http.StatusServiceUnavailable
			case NackBadSeq:
				code = http.StatusConflict
			case NackInternal:
				code = http.StatusInternalServerError
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"nack": v.Code, "seq": m.Seq, "reason": v.Reason,
			})
			return
		}
		json.NewEncoder(w).Encode(map[string]interface{}{"ack": m.Seq, "dup": v.Dup})
	})
}
