package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"videodrift/internal/faults"
	"videodrift/internal/vidsim"
)

// testFrameMsg builds a small valid frame message.
func testFrameMsg() FrameMsg {
	px := make([]float32, 4*3)
	for i := range px {
		px[i] = float32(i) * 0.125
	}
	return FrameMsg{Tenant: "cam-0", Seq: 7, W: 4, H: 3, Condition: "day", Pixels: px}
}

// TestHeaderSizeMatchesFaults pins the agreement the fault injector
// relies on: corruption offsets start at faults.NetHeaderBytes, which
// must equal this protocol's header size so injected damage always
// lands in the CRC-covered payload, never desyncing the stream.
func TestHeaderSizeMatchesFaults(t *testing.T) {
	if HeaderSize != faults.NetHeaderBytes {
		t.Fatalf("ingest.HeaderSize = %d, faults.NetHeaderBytes = %d — corruption could land in the header", HeaderSize, faults.NetHeaderBytes)
	}
}

// TestFrameRoundTrip pins the frame encode/decode loop, including the
// wire path through ReadMsg.
func TestFrameRoundTrip(t *testing.T) {
	m := testFrameMsg()
	wire := EncodeFrame(m)
	typ, payload, err := ReadMsg(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgFrame {
		t.Fatalf("message type %d, want %d", typ, MsgFrame)
	}
	got, err := DecodeFrameMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != m.Tenant || got.Seq != m.Seq || got.W != m.W || got.H != m.H || got.Condition != m.Condition {
		t.Fatalf("decoded %+v, want %+v", got, m)
	}
	for i := range m.Pixels {
		if got.Pixels[i] != m.Pixels[i] {
			t.Fatalf("pixel %d: %v, want %v", i, got.Pixels[i], m.Pixels[i])
		}
	}
	// DecodeMsg is the io-free sibling — same result from the buffer.
	typ2, payload2, err := DecodeMsg(wire)
	if err != nil || typ2 != MsgFrame || !bytes.Equal(payload, payload2) {
		t.Fatalf("DecodeMsg disagreed with ReadMsg: type %d err %v", typ2, err)
	}
}

// TestAckNackRoundTrip pins the control-message loops.
func TestAckNackRoundTrip(t *testing.T) {
	for _, a := range []Ack{{Seq: 0}, {Seq: 1 << 40, Dup: true}} {
		typ, payload, err := DecodeMsg(EncodeAck(a))
		if err != nil || typ != MsgAck {
			t.Fatalf("ack %+v: type %d err %v", a, typ, err)
		}
		got, err := DecodeAck(payload)
		if err != nil || got != a {
			t.Fatalf("ack round trip %+v -> %+v (%v)", a, got, err)
		}
	}
	n := Nack{Seq: 12, Code: NackQueueFull, RetryAfterMillis: 50, Reason: "tenant queue full"}
	typ, payload, err := DecodeMsg(EncodeNack(n))
	if err != nil || typ != MsgNack {
		t.Fatalf("nack: type %d err %v", typ, err)
	}
	got, err := DecodeNack(payload)
	if err != nil || got != n {
		t.Fatalf("nack round trip %+v -> %+v (%v)", n, got, err)
	}
	if _, err := DecodeAck(payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("DecodeAck on a nack payload: %v, want ErrTruncated", err)
	}
}

// TestFrameQuantization pins the float32 wire quantization:
// FrameFromMsg(MsgFromFrame(f)) is the float32-rounded image of f, and
// a second trip is the identity (quantization is idempotent — the
// loopback determinism contract depends on this).
func TestFrameQuantization(t *testing.T) {
	f := vidsim.GenerateTrainingStride(vidsim.Day(), 8, 8, 1, 1, 99)[0]
	q := FrameFromMsg(MsgFromFrame("t", 5, f))
	if q.Index != 5 || q.W != f.W || q.H != f.H || q.Condition != f.Condition {
		t.Fatalf("quantized frame header %+v, source %+v", q, f)
	}
	changed := false
	for i := range f.Pixels {
		if want := float64(float32(f.Pixels[i])); q.Pixels[i] != want {
			t.Fatalf("pixel %d: %v, want float32-rounded %v", i, q.Pixels[i], want)
		}
		if q.Pixels[i] != f.Pixels[i] {
			changed = true
		}
	}
	if !changed {
		t.Log("warning: no pixel actually lost precision; fixture too coarse to prove quantization")
	}
	q2 := FrameFromMsg(MsgFromFrame("t", 5, q))
	for i := range q.Pixels {
		if q2.Pixels[i] != q.Pixels[i] {
			t.Fatalf("pixel %d: quantization not idempotent", i)
		}
	}
	if MsgFromFrame("t", 0, f).Tenant != "t" {
		t.Fatal("tenant id lost")
	}
}

// TestReadMsgErrors pins every header-level rejection as its typed
// error.
func TestReadMsgErrors(t *testing.T) {
	wire := EncodeFrame(testFrameMsg())

	damage := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), wire...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"bad magic", damage(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"truncated header", wire[:HeaderSize-3], ErrTruncated},
		{"truncated payload", wire[:HeaderSize+5], ErrTruncated},
		{"crc mismatch", damage(func(b []byte) { b[len(b)-1] ^= 0x40 }), ErrChecksum},
		{"oversized declared length", damage(func(b []byte) {
			binary.BigEndian.PutUint32(b[6:10], MaxPayload+1)
		}), ErrOversized},
	}
	for _, c := range cases {
		if _, _, err := ReadMsg(bytes.NewReader(c.b)); !errors.Is(err, c.want) {
			t.Errorf("%s: err %v, want %v", c.name, err, c.want)
		}
	}

	var verr *VersionError
	_, _, err := ReadMsg(bytes.NewReader(damage(func(b []byte) { b[4] = 9 })))
	if !errors.As(err, &verr) || verr.Got != 9 {
		t.Fatalf("version 9: err %v, want *VersionError{Got:9}", err)
	}

	// CRC failure must leave the stream aligned: the next message on the
	// same reader still decodes.
	r := bytes.NewReader(append(damage(func(b []byte) { b[len(b)-1] ^= 1 }), EncodeAck(Ack{Seq: 3})...))
	if _, _, err := ReadMsg(r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("first message: %v, want ErrChecksum", err)
	}
	typ, payload, err := ReadMsg(r)
	if err != nil || typ != MsgAck {
		t.Fatalf("stream desynced after CRC failure: type %d err %v", typ, err)
	}
	if a, _ := DecodeAck(payload); a.Seq != 3 {
		t.Fatalf("ack after CRC failure: %+v", a)
	}
}

// TestDecodeFrameMsgErrors pins the payload-level rejections.
func TestDecodeFrameMsgErrors(t *testing.T) {
	valid := func() []byte {
		wire := EncodeFrame(testFrameMsg())
		return append([]byte(nil), wire[HeaderSize:]...)
	}
	reject := func(name string, payload []byte, want error) {
		t.Helper()
		if _, err := DecodeFrameMsg(payload); !errors.Is(err, want) {
			t.Errorf("%s: err %v, want %v", name, err, want)
		}
	}
	reject("empty payload", nil, ErrTruncated)
	reject("empty tenant", append([]byte{0}, valid()[1:]...), ErrMalformed)
	reject("oversized tenant", append([]byte{MaxTenant + 1}, valid()[1:]...), ErrOversized)
	reject("truncated mid-header", valid()[:4], ErrTruncated)
	reject("truncated mid-pixels", valid()[:len(valid())-7], ErrTruncated)

	zeroW := valid()
	// tenant "cam-0" is 5 bytes: w is at offset 1+5+8.
	binary.BigEndian.PutUint16(zeroW[14:16], 0)
	reject("zero width", zeroW, ErrMalformed)

	bigH := valid()
	binary.BigEndian.PutUint16(bigH[16:18], MaxDim+1)
	reject("oversized height", bigH, ErrOversized)

	wrongN := valid()
	// npix is after tenant(1+5) + seq(8) + dims(4) + condLen(1) + "day"(3).
	binary.BigEndian.PutUint32(wrongN[22:26], 5)
	reject("pixel count vs geometry", wrongN, ErrMalformed)
}

// FuzzDecodeFrameMsg throws arbitrary bytes at the frame decoder: it
// must never panic, and anything it accepts must re-encode to a payload
// that decodes to the same message (the decoder and encoder agree on
// the format).
func FuzzDecodeFrameMsg(f *testing.F) {
	wire := EncodeFrame(testFrameMsg())
	valid := wire[HeaderSize:]
	f.Add(valid)
	for _, cut := range []int{0, 1, 5, 9, 17, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(valid[:cut])
		}
	}
	f.Add([]byte{0})
	f.Add(append([]byte{5, 'a', 'b', 'c', 'd', 'e'}, make([]byte, 13)...))
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrameMsg(payload)
		if err != nil {
			return
		}
		if m.Tenant == "" || len(m.Tenant) > MaxTenant {
			t.Fatalf("accepted tenant %q", m.Tenant)
		}
		if m.W < 1 || m.H < 1 || m.W > MaxDim || m.H > MaxDim || len(m.Pixels) != m.W*m.H {
			t.Fatalf("accepted geometry %dx%d with %d pixels", m.W, m.H, len(m.Pixels))
		}
		if strings.Contains(m.Condition, "\x00") {
			// Conditions are free-form bytes on the wire; just exercise it.
			_ = m.Condition
		}
		wire2 := EncodeFrame(m)
		m2, err := DecodeFrameMsg(wire2[HeaderSize:])
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if m2.Tenant != m.Tenant || m2.Seq != m.Seq || m2.W != m.W || m2.H != m.H || m2.Condition != m.Condition {
			t.Fatalf("re-encode changed the message: %+v vs %+v", m2, m)
		}
		for i := range m.Pixels {
			if math.Float32bits(m2.Pixels[i]) != math.Float32bits(m.Pixels[i]) {
				t.Fatalf("re-encode changed pixel %d", i)
			}
		}
	})
}
