package ingest

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"videodrift/internal/vidsim"
)

// Client defaults.
const (
	DefaultDialTimeout  = 5 * time.Second
	DefaultReplyTimeout = 30 * time.Second
	DefaultMaxAttempts  = 8
	DefaultMaxBackoff   = 200
)

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Addr is the server's TCP address — or a comma-separated list of
	// addresses for a replicated deployment (primary first, standbys
	// after). The client sticks to one address while it works and
	// rotates to the next on connection failure, so a kill -9'd primary
	// hands the stream to its promoted standby without operator action.
	Addr string
	// Tenant is the stream identity every frame is sent under
	// (1..MaxTenant bytes).
	Tenant string
	// DialTimeout bounds each (re)connection attempt (<= 0 means
	// DefaultDialTimeout); ReplyTimeout bounds the wait for each Ack or
	// Nack (<= 0 means DefaultReplyTimeout).
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// MaxAttempts bounds transport-level retries per frame — reconnects
	// after torn writes, resends after corruption Nacks (<= 0 means
	// DefaultMaxAttempts). Backpressure Nacks have their own, larger
	// budget MaxBackoff, because a full queue is the server working as
	// designed, not failing (<= 0 means DefaultMaxBackoff).
	MaxAttempts int
	MaxBackoff  int
	// Sleep waits out a Nack's retry-after hint (nil means time.Sleep;
	// tests inject to avoid wall-clock waits).
	Sleep func(time.Duration)
	// Now is the deadline clock (nil means time.Now).
	Now func() time.Time
	// TxFault optionally mangles the bytes of transmission msg (a
	// per-client counter that includes retries) before they hit the
	// wire, returning the bytes to send and whether to tear the
	// connection down after them — the seam faults.NetInjector.Tx plugs
	// into. Nil sends clean.
	TxFault func(msg int, b []byte) ([]byte, bool)
}

// ClientStats counts a client's wire activity.
type ClientStats struct {
	// Sent counts transmissions (including retries); Acked frames
	// accepted; Dups idempotent re-acks (a resend whose original made
	// it); Nacks rejections of any kind; Retries re-sends of a frame;
	// Reconnects connection re-establishments after the first;
	// Failovers rotations to a different configured address.
	Sent, Acked, Dups, Nacks, Retries, Reconnects, Failovers int64
}

// NackError is returned when the server's rejection exhausts the
// retry budget (or is not retryable at all, like a sequence gap).
type NackError struct{ Nack Nack }

func (e *NackError) Error() string {
	return fmt.Sprintf("ingest: server nack code %d (seq %d): %s", e.Nack.Code, e.Nack.Seq, e.Nack.Reason)
}

// Client feeds one tenant's frame stream to an ingest server with
// exactly-once delivery: each frame is sent and resent — across
// reconnects, corruption rejections and backpressure — until the
// server acknowledges it (a Dup ack counts: the earlier send made it
// and only the ack was lost). A Client is not safe for concurrent
// use; one goroutine owns one tenant stream, matching the protocol's
// per-tenant total order.
type Client struct {
	cfg       ClientConfig
	addrs     []string
	addrIdx   int // index of the address currently (or last) connected
	connFails int // consecutive all-address connect failures
	conn      net.Conn
	seq       uint64 // next sequence number to assign
	tx        int    // transmission counter (TxFault key)
	stats     ClientStats
}

// Dial builds a client and establishes its first connection.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Tenant == "" || len(cfg.Tenant) > MaxTenant {
		return nil, fmt.Errorf("%w: tenant id must be 1..%d bytes", ErrMalformed, MaxTenant)
	}
	var addrs []string
	for _, a := range strings.Split(cfg.Addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: no server address", ErrMalformed)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = DefaultReplyTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Client{cfg: cfg, addrs: addrs}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect (re)establishes the TCP connection, preferring the address
// that last worked and rotating through the rest on failure.
func (c *Client) connect() error {
	var lastErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (c.addrIdx + i) % len(c.addrs)
		conn, err := net.DialTimeout("tcp", c.addrs[idx], c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if idx != c.addrIdx {
			c.addrIdx = idx
			c.stats.Failovers++
		}
		c.conn = conn
		return nil
	}
	return lastErr
}

// drop closes the current connection (if any).
func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close tears the connection down. The client's stream position is
// kept, so a later Send would reconnect and continue the sequence.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Stats returns the client's wire counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Seq returns the next sequence number the client will assign.
func (c *Client) Seq() uint64 { return c.seq }

// Send delivers one frame, blocking until the server acknowledges it
// or a retry budget runs out. On success the client's sequence
// advances; on error the frame is not considered delivered and Send
// may be called again with the same frame.
func (c *Client) Send(f vidsim.Frame) error {
	wire := EncodeFrame(MsgFromFrame(c.cfg.Tenant, c.seq, f))
	attempts, backoffs := 0, 0
	var lastErr error
	for attempts < c.cfg.MaxAttempts && backoffs < c.cfg.MaxBackoff {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				if len(c.addrs) > 1 {
					// Every address refused. During a failover that is the
					// expected window while the standby promotes, so it spends
					// the larger backpressure budget with a capped exponential
					// wait rather than burning the per-frame attempt budget.
					backoffs++
					if c.connFails < 10 {
						c.connFails++
					}
					d := 5 * time.Millisecond << uint(c.connFails)
					if d > 500*time.Millisecond {
						d = 500 * time.Millisecond
					}
					c.cfg.Sleep(d)
				} else {
					attempts++
				}
				continue
			}
			c.connFails = 0
			c.stats.Reconnects++
		}
		out, tear := wire, false
		if c.cfg.TxFault != nil {
			out, tear = c.cfg.TxFault(c.tx, wire)
		}
		c.tx++
		c.stats.Sent++
		_, werr := c.conn.Write(out)
		if tear {
			// Injected torn write: the connection dies mid-message, like a
			// crashing sender. Reconnect and resend.
			c.drop()
			attempts++
			c.stats.Retries++
			lastErr = fmt.Errorf("ingest: injected torn write (tx %d)", c.tx-1)
			continue
		}
		if werr != nil {
			c.drop()
			attempts++
			c.stats.Retries++
			lastErr = werr
			continue
		}
		c.conn.SetReadDeadline(c.cfg.Now().Add(c.cfg.ReplyTimeout))
		msgType, payload, err := ReadMsg(c.conn)
		if err != nil {
			// Lost reply: the frame may or may not have been processed.
			// Resend — the server's seq dedup makes that idempotent.
			c.drop()
			attempts++
			c.stats.Retries++
			lastErr = err
			continue
		}
		switch msgType {
		case MsgAck:
			ack, err := DecodeAck(payload)
			if err != nil {
				c.drop()
				attempts++
				lastErr = err
				continue
			}
			c.stats.Acked++
			if ack.Dup {
				c.stats.Dups++
			}
			c.seq++
			return nil
		case MsgNack:
			nack, err := DecodeNack(payload)
			if err != nil {
				c.drop()
				attempts++
				lastErr = err
				continue
			}
			c.stats.Nacks++
			lastErr = &NackError{Nack: nack}
			switch nack.Code {
			case NackQueueFull, NackTenantLimit:
				// Backpressure: the server told us when to come back.
				backoffs++
				c.stats.Retries++
				d := time.Duration(nack.RetryAfterMillis) * time.Millisecond
				if d <= 0 {
					d = DefaultRetryAfter
				}
				c.cfg.Sleep(d)
				continue
			case NackMalformed, NackInternal:
				// Wire corruption or a transient server fault: resend.
				attempts++
				c.stats.Retries++
				continue
			default:
				// A sequence gap (or unknown code) is not retryable: the
				// same bytes would be rejected again.
				return lastErr
			}
		default:
			c.drop()
			attempts++
			lastErr = fmt.Errorf("ingest: unexpected reply type %d", msgType)
			continue
		}
	}
	if lastErr == nil {
		lastErr = errors.New("ingest: send retries exhausted")
	}
	return fmt.Errorf("ingest: frame seq %d not delivered after %d attempts: %w", c.seq, attempts+backoffs, lastErr)
}
