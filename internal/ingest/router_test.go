package ingest

import (
	"strings"
	"sync"
	"testing"
	"time"

	"videodrift"
	"videodrift/internal/vidsim"
)

// Fleet fixtures: the root facade's 16x16 test scene, built once —
// model entries are immutable after provisioning, so every test can
// share them across fleets and reference monitors.
const (
	testDim     = 16 * 16
	testClasses = 8
)

func testLabeler(f vidsim.Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= testClasses {
		c = testClasses - 1
	}
	return c
}

func testCond(base vidsim.Condition) vidsim.Condition {
	base.CarRate, base.BusRate = 5.5, 0
	return base
}

var (
	modelsOnce sync.Once
	testModels []*videodrift.Model
	testOpts   videodrift.Options
)

func sharedModels() ([]*videodrift.Model, videodrift.Options) {
	modelsOnce.Do(func() {
		testOpts = videodrift.Defaults(testDim, testClasses)
		day := videodrift.BuildModel("day",
			vidsim.GenerateTraining(testCond(vidsim.Day()), 16, 16, 200, 1), testLabeler, testOpts)
		night := videodrift.BuildModel("night",
			vidsim.GenerateTraining(testCond(vidsim.Night()), 16, 16, 200, 2), testLabeler, testOpts)
		testModels = []*videodrift.Model{day, night}
	})
	return testModels, testOpts
}

// testFleet builds an empty dynamic fleet over the shared models.
func testFleet(opts videodrift.Options) *videodrift.ShardedMonitor {
	return videodrift.NewDynamicSharded(testModels, testLabeler, videodrift.ShardedOptions{
		Options: opts, Workers: 2,
	})
}

// testStream generates a tenant's day-scene frames.
func testStream(n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTrainingStride(testCond(vidsim.Day()), 16, 16, n, 1, seed)
}

// submitFrames pushes frames [from, to) of a stream as one tenant's
// next sequence numbers, requiring every verdict to be a plain accept.
func submitFrames(t *testing.T, r *Router, tenant string, stream []vidsim.Frame, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		v := r.Submit(MsgFromFrame(tenant, uint64(i), stream[i]))
		if !v.Ack || v.Dup {
			t.Fatalf("tenant %s seq %d: verdict %+v, want clean ack", tenant, i, v)
		}
	}
}

// TestRouterAttachOnFirstFrame pins the dynamic tenant lifecycle's
// front half: an unknown tenant's first frame attaches a shard over the
// shared models; distinct tenants get distinct slots.
func TestRouterAttachOnFirstFrame(t *testing.T) {
	_, opts := sharedModels()
	sm := testFleet(opts)
	r := NewRouter(sm, Config{})
	if sm.Active() != 0 {
		t.Fatalf("fresh dynamic fleet has %d active shards", sm.Active())
	}
	a, b := testStream(4, 11), testStream(4, 12)
	submitFrames(t, r, "cam-a", a, 0, 1)
	if sm.Active() != 1 {
		t.Fatalf("after first tenant: %d active shards, want 1", sm.Active())
	}
	submitFrames(t, r, "cam-b", b, 0, 1)
	s := r.Stats()
	if s.Known != 2 || s.Active != 2 || s.Attaches != 2 || s.Accepted != 2 {
		t.Fatalf("stats %+v, want 2 known/active/attached/accepted", s)
	}
	if s.Tenants[0].Slot == s.Tenants[1].Slot {
		t.Fatalf("tenants share slot %d", s.Tenants[0].Slot)
	}
	if n, err := r.Pump(); err != nil || n != 2 {
		t.Fatalf("Pump processed %d (%v), want 2", n, err)
	}
	if s := r.Stats(); s.Processed != 2 || s.Tenants[0].Processed != 1 {
		t.Fatalf("after pump: %+v", s)
	}
}

// TestRouterSeqContract pins the exactly-once sequencing: a replayed
// seq is acked idempotently as a duplicate, a gap is rejected with the
// expected seq in the reason, and the in-order frame then proceeds.
func TestRouterSeqContract(t *testing.T) {
	_, opts := sharedModels()
	r := NewRouter(testFleet(opts), Config{})
	stream := testStream(4, 13)
	submitFrames(t, r, "cam-a", stream, 0, 1)

	if v := r.Submit(MsgFromFrame("cam-a", 0, stream[0])); !v.Ack || !v.Dup {
		t.Fatalf("resend of seq 0: verdict %+v, want dup ack", v)
	}
	v := r.Submit(MsgFromFrame("cam-a", 2, stream[2]))
	if v.Ack || v.Code != NackBadSeq || !strings.Contains(v.Reason, "want seq 1, got 2") {
		t.Fatalf("gap: verdict %+v, want NackBadSeq naming seq 1", v)
	}
	submitFrames(t, r, "cam-a", stream, 1, 2)
	s := r.Stats()
	if s.Accepted != 2 || s.Dups != 1 || s.NackedSeq != 1 {
		t.Fatalf("stats %+v, want accepted 2, dups 1, nacked_seq 1", s)
	}
}

// TestRouterBackpressure pins the no-silent-drop contract: a full
// queue rejects with NackQueueFull and a retry-after hint, the
// rejected frame is NOT queued, and after a pump the same frame is
// accepted — every accepted frame reaches the fleet.
func TestRouterBackpressure(t *testing.T) {
	_, opts := sharedModels()
	r := NewRouter(testFleet(opts), Config{QueueCap: 4, BatchSize: 2})
	stream := testStream(6, 14)
	submitFrames(t, r, "cam-a", stream, 0, 4)

	v := r.Submit(MsgFromFrame("cam-a", 4, stream[4]))
	if v.Ack || v.Code != NackQueueFull || v.RetryAfter <= 0 {
		t.Fatalf("full queue: verdict %+v, want NackQueueFull with retry-after", v)
	}
	s := r.Stats()
	if s.Accepted != 4 || s.NackedFull != 1 || s.Tenants[0].Queued != 4 {
		t.Fatalf("stats %+v, want 4 accepted, 1 nacked_full, 4 queued", s)
	}
	if n, err := r.Pump(); err != nil || n != 4 {
		t.Fatalf("Pump processed %d (%v), want 4", n, err)
	}
	// The nacked frame retries at the same seq and now fits.
	submitFrames(t, r, "cam-a", stream, 4, 6)
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	s = r.Stats()
	if s.Accepted != 6 || s.Processed != 6 {
		t.Fatalf("stats %+v: accepted %d processed %d, want 6/6 — a frame was lost", s, s.Accepted, s.Processed)
	}
}

// TestRouterTenantLimit pins the admission bound: beyond MaxTenants an
// unknown tenant is rejected with a retryable NackTenantLimit, and a
// slot freed by eviction admits it.
func TestRouterTenantLimit(t *testing.T) {
	_, opts := sharedModels()
	now := time.Unix(1000, 0)
	r := NewRouter(testFleet(opts), Config{
		MaxTenants: 1, IdleEvict: time.Minute,
		Now: func() time.Time { return now },
	})
	a, b := testStream(2, 15), testStream(2, 16)
	submitFrames(t, r, "cam-a", a, 0, 1)
	if v := r.Submit(MsgFromFrame("cam-b", 0, b[0])); v.Ack || v.Code != NackTenantLimit || v.RetryAfter <= 0 {
		t.Fatalf("over limit: verdict %+v, want NackTenantLimit with retry-after", v)
	}
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := r.Pump(); err != nil { // evicts idle cam-a
		t.Fatal(err)
	}
	submitFrames(t, r, "cam-b", b, 0, 1)
	s := r.Stats()
	if s.NackedLimit != 1 || s.Evictions != 1 || s.Active != 1 {
		t.Fatalf("stats %+v, want 1 nacked_limit, 1 eviction, 1 active", s)
	}
}

// TestRouterIdleEvictAndReattach pins the lifecycle's back half: an
// idle tenant detaches (freeing its shard slot), its sequence position
// survives, and its next frame reattaches — on the reused slot — with
// the stream continuing exactly where it left off.
func TestRouterIdleEvictAndReattach(t *testing.T) {
	_, opts := sharedModels()
	now := time.Unix(2000, 0)
	sm := testFleet(opts)
	r := NewRouter(sm, Config{
		IdleEvict: time.Minute, BatchSize: 2,
		Now: func() time.Time { return now },
	})
	stream := testStream(8, 17)
	submitFrames(t, r, "cam-a", stream, 0, 3)
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Evictions != 0 || s.Active != 1 {
		t.Fatalf("fresh tenant already evicted: %+v", s)
	}
	now = now.Add(2 * time.Minute)
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Evictions != 1 || s.Active != 0 || s.Known != 1 || s.Tenants[0].Slot != -1 {
		t.Fatalf("after idle window: %+v, want 1 known evicted tenant", s)
	}
	if sm.Active() != 0 {
		t.Fatalf("fleet still has %d attached shards after eviction", sm.Active())
	}

	// The returning tenant must continue its sequence: a replay of an
	// old seq is still a dup, the next expected seq is still honored.
	if v := r.Submit(MsgFromFrame("cam-a", 1, stream[1])); !v.Ack || !v.Dup {
		t.Fatalf("replay across eviction: verdict %+v, want dup ack", v)
	}
	submitFrames(t, r, "cam-a", stream, 3, 5)
	s = r.Stats()
	if s.Attaches != 2 || s.Active != 1 || s.Tenants[0].Slot != 0 {
		t.Fatalf("reattach: %+v, want second attach on reused slot 0", s)
	}
	if _, err := r.Pump(); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Processed != 5 {
		t.Fatalf("processed %d, want all 5 accepted frames", s.Processed)
	}
}

// TestRouterPrometheus smoke-checks the metrics surface.
func TestRouterPrometheus(t *testing.T) {
	_, opts := sharedModels()
	r := NewRouter(testFleet(opts), Config{})
	r.CountMalformed()
	submitFrames(t, r, "cam-a", testStream(1, 18), 0, 1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ingest_tenants_active 1",
		"ingest_frames_accepted_total 1",
		"ingest_nack_total{code=\"malformed\"} 1",
		"ingest_tenant_queue_depth{tenant=\"cam-a\"} 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if r.Stats().NackedMalformed != 1 {
		t.Fatal("CountMalformed not reflected in stats")
	}
}
