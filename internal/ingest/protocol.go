// Package ingest is the network ingestion tier: it accepts frames from
// external tenants over a compact binary protocol (raw TCP, plus an
// HTTP POST fallback), routes them through per-tenant bounded queues
// with explicit backpressure, and feeds them into a dynamic
// ShardedMonitor fleet — the front door that turns the single-process
// monitor into a multi-tenant service (DESIGN.md §14).
//
// The wire format is length-prefixed and versioned. Every message is
//
//	magic   u32  "VDIF" (0x56444946)
//	version u8   1
//	type    u8   frame | ack | nack
//	len     u32  payload length in bytes
//	crc     u32  CRC-32 (IEEE) of the payload
//	payload len bytes
//
// all big-endian. The CRC covers the payload only; header damage is
// caught by the magic/version/length checks. A frame payload carries
// the tenant id, a per-tenant sequence number, the frame geometry and
// condition tag, and the pixels as float32 (the wire quantization — the
// monitor works on float64, so a frame that crossed the wire is the
// float32-rounded image of the original; determinism contracts compare
// against the quantized frame).
//
// Decoding never trusts a declared length: payloads are capped, dims
// are bounded, and every structural violation surfaces as a typed
// error (ErrBadMagic, ErrTruncated, ErrChecksum, ErrOversized,
// ErrMalformed, *VersionError) — never a panic, never an allocation
// sized by attacker-controlled bytes beyond the cap.
//
// The package is listed in determinism.CriticalPackages, so the whole
// of it (not just this file) is held to the deterministic-behavior
// invariants.
package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
)

// Magic is the wire magic number, "VDIF" big-endian.
const Magic uint32 = 0x56444946

// Version is the protocol version this package speaks.
const Version = 1

// HeaderSize is the fixed size of the wire header in bytes
// (faults.NetHeaderBytes mirrors it so injected corruption lands in
// the payload; a test pins the agreement).
const HeaderSize = 14

// Message types.
const (
	MsgFrame = 1 // client → server: one video frame
	MsgAck   = 2 // server → client: frame accepted (or duplicate)
	MsgNack  = 3 // server → client: frame rejected, with reason code
)

// Protocol limits. Violations decode as ErrOversized.
const (
	// MaxDim bounds frame width and height.
	MaxDim = 4096
	// MaxTenant bounds the tenant id length in bytes.
	MaxTenant = 64
	// MaxPayload bounds a declared payload length: the largest legal
	// frame (MaxDim² float32 pixels) plus the fixed fields.
	MaxPayload = 4*MaxDim*MaxDim + 1 + MaxTenant + 8 + 2 + 2 + 1 + 255 + 4
)

// Typed decode errors.
var (
	// ErrBadMagic reports a header that does not start with Magic — the
	// peer is not speaking this protocol (or the stream desynced).
	ErrBadMagic = errors.New("ingest: bad magic")
	// ErrTruncated reports a message or payload shorter than its
	// declared contents.
	ErrTruncated = errors.New("ingest: truncated message")
	// ErrChecksum reports a payload whose CRC does not match the header.
	ErrChecksum = errors.New("ingest: payload checksum mismatch")
	// ErrOversized reports a declared length beyond the protocol limits.
	ErrOversized = errors.New("ingest: oversized message")
	// ErrMalformed reports a structurally invalid payload (zero dims,
	// pixel count disagreeing with geometry, empty tenant id).
	ErrMalformed = errors.New("ingest: malformed payload")
)

// VersionError reports a protocol version this package does not speak.
type VersionError struct{ Got uint8 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("ingest: protocol version %d (want %d)", e.Got, Version)
}

// FrameMsg is a decoded frame message: one video frame addressed by
// (tenant, sequence number). Seq is per-tenant, starts at 0 and
// increases by 1 per frame; the router uses it to detect duplicates
// (resends after a lost ack) and gaps.
//
//driftlint:wire encode=EncodeFrame decode=DecodeFrameMsg stream=ReadMsg
type FrameMsg struct {
	Tenant    string
	Seq       uint64
	W, H      int
	Condition string
	Pixels    []float32
}

// Ack is a decoded acknowledgment: frame Seq is accepted. Dup reports
// an idempotent accept — the frame had already been processed (a
// resend after a lost ack), so the sender should advance, not retry.
//
//driftlint:wire encode=EncodeAck decode=DecodeAck stream=ReadMsg
type Ack struct {
	Seq uint64
	Dup bool
}

// Nack reason codes.
const (
	// NackMalformed: the message failed to decode; resending the same
	// bytes will fail again.
	NackMalformed = 1
	// NackQueueFull: the tenant's queue is full — backpressure. Retry
	// after RetryAfter.
	NackQueueFull = 2
	// NackTenantLimit: the fleet is at -max-tenants and this tenant is
	// unknown. Retry after RetryAfter (a slot may free up).
	NackTenantLimit = 3
	// NackBadSeq: the sequence number leaves a gap (frames would be
	// silently missing). The expected seq is in Reason.
	NackBadSeq = 4
	// NackInternal: the server could not process the frame.
	NackInternal = 5
)

// Nack is a decoded rejection for frame Seq. RetryAfterMillis is the
// server's backoff hint (0 means not retryable); Reason is a short
// human-readable diagnostic.
//
//driftlint:wire encode=EncodeNack decode=DecodeNack stream=ReadMsg
type Nack struct {
	Seq              uint64
	Code             uint8
	RetryAfterMillis uint32
	Reason           string
}

// appendHeader appends the 14-byte header for a payload.
func appendHeader(b []byte, msgType uint8, payload []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, Magic)
	b = append(b, Version, msgType)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return b
}

// EncodeFrame encodes a frame message to wire bytes (header included).
func EncodeFrame(m FrameMsg) []byte {
	payload := make([]byte, 0, 1+len(m.Tenant)+8+2+2+1+len(m.Condition)+4+4*len(m.Pixels))
	payload = append(payload, uint8(len(m.Tenant)))
	payload = append(payload, m.Tenant...)
	payload = binary.BigEndian.AppendUint64(payload, m.Seq)
	payload = binary.BigEndian.AppendUint16(payload, uint16(m.W))
	payload = binary.BigEndian.AppendUint16(payload, uint16(m.H))
	payload = append(payload, uint8(len(m.Condition)))
	payload = append(payload, m.Condition...)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(m.Pixels)))
	for _, p := range m.Pixels {
		payload = binary.BigEndian.AppendUint32(payload, math.Float32bits(p))
	}
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgFrame, payload), payload...)
}

// EncodeAck encodes an ack to wire bytes.
func EncodeAck(a Ack) []byte {
	payload := make([]byte, 9)
	binary.BigEndian.PutUint64(payload, a.Seq)
	if a.Dup {
		payload[8] = 1
	}
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgAck, payload), payload...)
}

// EncodeNack encodes a nack to wire bytes. Reasons beyond 65535 bytes
// are truncated.
func EncodeNack(n Nack) []byte {
	if len(n.Reason) > 65535 {
		n.Reason = n.Reason[:65535]
	}
	payload := make([]byte, 0, 8+1+4+2+len(n.Reason))
	payload = binary.BigEndian.AppendUint64(payload, n.Seq)
	payload = append(payload, n.Code)
	payload = binary.BigEndian.AppendUint32(payload, n.RetryAfterMillis)
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(n.Reason)))
	payload = append(payload, n.Reason...)
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgNack, payload), payload...)
}

// ReadMsg reads one length-prefixed message off the stream: header
// validation (magic, version, payload cap), then exactly the declared
// payload, then the CRC check. On a header-level error the stream
// position is undefined (the connection should be dropped); a payload
// CRC failure leaves the stream aligned on the next message.
func ReadMsg(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err // io.EOF between messages: clean close
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return 0, nil, &VersionError{Got: hdr[4]}
	}
	msgType = hdr[5]
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d > %d", ErrOversized, n, MaxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[10:14]) {
		return msgType, nil, ErrChecksum
	}
	return msgType, payload, nil
}

// DecodeMsg decodes one message from a complete wire buffer (header +
// payload), the io-free sibling of ReadMsg.
func DecodeMsg(b []byte) (msgType uint8, payload []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, ErrTruncated
	}
	return ReadMsg(bytes.NewReader(b))
}

// DecodeFrameMsg decodes a frame payload (the bytes after the header).
// This is the protocol's attack surface — every length is checked
// before use, so arbitrary input yields a typed error, never a panic
// or an unbounded allocation. Fuzzed by FuzzDecodeFrameMsg.
func DecodeFrameMsg(payload []byte) (FrameMsg, error) {
	var m FrameMsg
	if len(payload) < 1 {
		return m, ErrTruncated
	}
	tn := int(payload[0])
	rest := payload[1:]
	if tn == 0 {
		return m, fmt.Errorf("%w: empty tenant id", ErrMalformed)
	}
	if tn > MaxTenant {
		return m, fmt.Errorf("%w: tenant id %d bytes > %d", ErrOversized, tn, MaxTenant)
	}
	if len(rest) < tn+8+2+2+1 {
		return m, ErrTruncated
	}
	m.Tenant = string(rest[:tn])
	rest = rest[tn:]
	m.Seq = binary.BigEndian.Uint64(rest[0:8])
	m.W = int(binary.BigEndian.Uint16(rest[8:10]))
	m.H = int(binary.BigEndian.Uint16(rest[10:12]))
	cn := int(rest[12])
	rest = rest[13:]
	if m.W < 1 || m.H < 1 {
		return FrameMsg{}, fmt.Errorf("%w: %dx%d frame", ErrMalformed, m.W, m.H)
	}
	if m.W > MaxDim || m.H > MaxDim {
		return FrameMsg{}, fmt.Errorf("%w: %dx%d frame > %dx%d", ErrOversized, m.W, m.H, MaxDim, MaxDim)
	}
	if len(rest) < cn+4 {
		return FrameMsg{}, ErrTruncated
	}
	m.Condition = string(rest[:cn])
	rest = rest[cn:]
	npix := int(binary.BigEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	if npix != m.W*m.H {
		return FrameMsg{}, fmt.Errorf("%w: %d pixels for a %dx%d frame", ErrMalformed, npix, m.W, m.H)
	}
	if len(rest) != 4*npix {
		return FrameMsg{}, ErrTruncated
	}
	m.Pixels = make([]float32, npix)
	for i := range m.Pixels {
		m.Pixels[i] = math.Float32frombits(binary.BigEndian.Uint32(rest[4*i : 4*i+4]))
	}
	return m, nil
}

// DecodeAck decodes an ack payload.
func DecodeAck(payload []byte) (Ack, error) {
	if len(payload) != 9 {
		return Ack{}, ErrTruncated
	}
	return Ack{Seq: binary.BigEndian.Uint64(payload[0:8]), Dup: payload[8] != 0}, nil
}

// DecodeNack decodes a nack payload.
func DecodeNack(payload []byte) (Nack, error) {
	if len(payload) < 8+1+4+2 {
		return Nack{}, ErrTruncated
	}
	n := Nack{
		Seq:              binary.BigEndian.Uint64(payload[0:8]),
		Code:             payload[8],
		RetryAfterMillis: binary.BigEndian.Uint32(payload[9:13]),
	}
	rn := int(binary.BigEndian.Uint16(payload[13:15]))
	if len(payload) != 15+rn {
		return Nack{}, ErrTruncated
	}
	n.Reason = string(payload[15:])
	return n, nil
}

// FrameFromMsg converts a decoded frame message into the monitor's
// frame type. Index carries the wire sequence number; pixels widen
// float32 → float64, so this is the exact frame an in-process run must
// be fed to reproduce a wire run bit-identically.
func FrameFromMsg(m FrameMsg) vidsim.Frame {
	px := make(tensor.Vector, len(m.Pixels))
	for i, p := range m.Pixels {
		px[i] = float64(p)
	}
	return vidsim.Frame{
		Index:     int(m.Seq),
		W:         m.W,
		H:         m.H,
		Pixels:    px,
		Condition: m.Condition,
	}
}

// MsgFromFrame builds the wire message for a frame: pixels narrow
// float64 → float32 (the wire quantization), ground truth does not
// travel — annotation is the server's job, as in the paper's setting.
func MsgFromFrame(tenant string, seq uint64, f vidsim.Frame) FrameMsg {
	px := make([]float32, len(f.Pixels))
	for i, p := range f.Pixels {
		px[i] = float32(p)
	}
	return FrameMsg{
		Tenant:    tenant,
		Seq:       seq,
		W:         f.W,
		H:         f.H,
		Condition: f.Condition,
		Pixels:    px,
	}
}
