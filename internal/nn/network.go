package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"videodrift/internal/tensor"
)

// Network is a sequential stack of layers. It is not safe for concurrent
// use; the ensemble code trains one Network per goroutine.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the input through every layer and returns the final output.
func (n *Network) Forward(in tensor.Vector) tensor.Vector {
	out := in
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Backward propagates the gradient of the loss with respect to the network
// output back through every layer, accumulating parameter gradients, and
// returns the gradient with respect to the network input.
func (n *Network) Backward(gradOut tensor.Vector) tensor.Vector {
	g := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
	return g
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += len(p.Value)
	}
	return c
}

// Snapshot returns a deep copy of all parameter values, in Params order.
func (n *Network) Snapshot() [][]float64 {
	ps := n.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Value...)
	}
	return out
}

// Restore loads parameter values captured by Snapshot. It panics when the
// snapshot does not match the network's parameter shapes.
func (n *Network) Restore(snap [][]float64) {
	ps := n.Params()
	if len(ps) != len(snap) {
		panic(fmt.Sprintf("nn: Restore with %d tensors, network has %d", len(snap), len(ps)))
	}
	for i, p := range ps {
		if len(p.Value) != len(snap[i]) {
			panic(fmt.Sprintf("nn: Restore tensor %d has %d values, want %d", i, len(snap[i]), len(p.Value)))
		}
		copy(p.Value, snap[i])
	}
}

// MarshalBinary serializes the network's weights (not its architecture)
// with encoding/gob, so a network can be checkpointed and restored into an
// identically shaped network.
func (n *Network) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(n.Snapshot()); err != nil {
		return nil, fmt.Errorf("nn: encode weights: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores weights captured by MarshalBinary into this
// network, which must have the same architecture.
func (n *Network) UnmarshalBinary(data []byte) error {
	var snap [][]float64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode weights: %w", err)
	}
	ps := n.Params()
	if len(ps) != len(snap) {
		return fmt.Errorf("nn: checkpoint has %d tensors, network has %d", len(snap), len(ps))
	}
	for i, p := range ps {
		if len(p.Value) != len(snap[i]) {
			return fmt.Errorf("nn: checkpoint tensor %d has %d values, want %d", i, len(snap[i]), len(p.Value))
		}
	}
	n.Restore(snap)
	return nil
}
