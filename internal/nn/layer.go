// Package nn is a minimal CPU neural-network substrate: dense layers,
// pointwise activations, stable classification and reconstruction losses,
// and SGD/Adam optimizers. It exists so that the VAE the Drift Inspector
// depends on (paper §4.2.2) and the classifier ensembles MSBO depends on
// (paper §5.2.2) can be trained from scratch with no external dependencies.
//
// The package works on single examples (stochastic updates); the datasets
// in this repo are small synthetic frames, for which per-example updates
// converge quickly and keep the code simple and allocation-light.
package nn

import (
	"math"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
// Optimizers mutate Value in place and read/clear Grad.
type Param struct {
	Value []float64
	Grad  []float64
}

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs, so a Layer is stateful and not safe for concurrent use.
type Layer interface {
	// Forward computes the layer output for in.
	Forward(in tensor.Vector) tensor.Vector
	// Backward consumes the gradient of the loss with respect to the
	// layer's output, accumulates parameter gradients, and returns the
	// gradient with respect to the layer's input.
	Backward(gradOut tensor.Vector) tensor.Vector
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Dense is a fully connected layer computing W·x + b.
type Dense struct {
	W  *tensor.Matrix // out × in
	B  tensor.Vector
	GW *tensor.Matrix
	GB tensor.Vector

	in tensor.Vector // cached input for Backward
}

// NewDense returns a Dense layer with Xavier-initialized weights and zero
// biases.
func NewDense(inDim, outDim int, rng *stats.RNG) *Dense {
	d := &Dense{
		W:  tensor.NewMatrix(outDim, inDim),
		B:  tensor.NewVector(outDim),
		GW: tensor.NewMatrix(outDim, inDim),
		GB: tensor.NewVector(outDim),
	}
	d.W.XavierInit(rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in tensor.Vector) tensor.Vector {
	d.in = in
	out := d.W.MatVec(in)
	out.AddInPlace(d.B)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut tensor.Vector) tensor.Vector {
	d.GW.AddOuterInPlace(1, gradOut, d.in)
	d.GB.AddInPlace(gradOut)
	return d.W.MatVecT(gradOut)
}

// Params implements Layer.
func (d *Dense) Params() []*Param {
	return []*Param{
		{Value: d.W.Data, Grad: d.GW.Data},
		{Value: d.B, Grad: d.GB},
	}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(in tensor.Vector) tensor.Vector {
	if cap(r.mask) < len(in) {
		r.mask = make([]bool, len(in))
	}
	r.mask = r.mask[:len(in)]
	out := make(tensor.Vector, len(in))
	for i, x := range in {
		if x > 0 {
			out[i] = x
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(gradOut))
	for i, g := range gradOut {
		if r.mask[i] {
			out[i] = g
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out tensor.Vector
}

// Forward implements Layer.
func (s *Sigmoid) Forward(in tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(in))
	for i, x := range in {
		out[i] = 1 / (1 + math.Exp(-x))
	}
	s.out = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(gradOut))
	for i, g := range gradOut {
		y := s.out[i]
		out[i] = g * y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out tensor.Vector
}

// Forward implements Layer.
func (t *Tanh) Forward(in tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(in))
	for i, x := range in {
		out[i] = math.Tanh(x)
	}
	t.out = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(gradOut))
	for i, g := range gradOut {
		y := t.out[i]
		out[i] = g * (1 - y*y)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }
