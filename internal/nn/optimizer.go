package nn

import "math"

// Optimizer updates network parameters from accumulated gradients. Step
// consumes the current gradients; callers clear them (Network.ZeroGrad)
// before the next accumulation.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity [][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum (0 for vanilla SGD).
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	if o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, len(p.Value))
		}
	}
	for i, p := range params {
		v := o.velocity[i]
		for j := range p.Value {
			v[j] = o.Momentum*v[j] - o.LR*p.Grad[j]
			p.Value[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the optimizer the paper trains
// its VAE and classifiers with (§6).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, len(p.Value))
			o.v[i] = make([]float64, len(p.Value))
		}
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		m, v := o.m[i], o.v[i]
		for j := range p.Value {
			g := p.Grad[j]
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mHat := m[j] / c1
			vHat := v[j] / c2
			p.Value[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}

// ClipGrads scales all gradients down so their global L2 norm does not
// exceed maxNorm. It is a no-op when the norm is already within bounds and
// returns the pre-clip norm.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}
