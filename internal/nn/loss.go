package nn

import (
	"math"

	"videodrift/internal/tensor"
)

// The loss functions below return the scalar loss together with the
// gradient of the loss with respect to the network's raw output (logits),
// which is what Network.Backward consumes. Losses that involve a softmax
// or sigmoid fold the activation into the loss for numerical stability, so
// the network itself should end with a plain Dense layer.

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against the
// integer class label, together with the gradient with respect to the
// logits (softmax(logits) − onehot(label)). This is the proper scoring rule
// (paper §5.2.1) the classifier ensembles are trained on.
func SoftmaxCrossEntropy(logits tensor.Vector, label int) (loss float64, grad tensor.Vector) {
	if label < 0 || label >= len(logits) {
		panic("nn: SoftmaxCrossEntropy label out of range")
	}
	probs := tensor.Softmax(logits)
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	loss = -math.Log(p)
	grad = probs.Clone()
	grad[label] -= 1
	return loss, grad
}

// BCEWithLogits returns the mean binary cross-entropy between
// sigmoid(logits) and target (each target in [0,1]), together with the
// gradient with respect to the logits, (sigmoid(logits) − target)/n. This
// is the pixel reconstruction loss the VAE is trained on (paper §4.2.2).
func BCEWithLogits(logits, target tensor.Vector) (loss float64, grad tensor.Vector) {
	if len(logits) != len(target) {
		panic("nn: BCEWithLogits length mismatch")
	}
	n := float64(len(logits))
	grad = make(tensor.Vector, len(logits))
	for i, z := range logits {
		y := target[i]
		// log(1+exp(z)) computed stably.
		softplus := math.Max(z, 0) + math.Log1p(math.Exp(-math.Abs(z)))
		loss += softplus - z*y
		s := 1 / (1 + math.Exp(-z))
		grad[i] = (s - y) / n
	}
	return loss / n, grad
}

// MSE returns the mean squared error between pred and target, together
// with the gradient 2(pred − target)/n with respect to pred.
func MSE(pred, target tensor.Vector) (loss float64, grad tensor.Vector) {
	if len(pred) != len(target) {
		panic("nn: MSE length mismatch")
	}
	n := float64(len(pred))
	grad = make(tensor.Vector, len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// BrierScore returns the Brier score of a predictive distribution probs
// against the integer class label: (1/K)·Σ_i (δ_{i=label} − probs[i])².
// Zero means complete certainty on the correct class; higher is more
// uncertain (paper §5.2.1).
func BrierScore(probs tensor.Vector, label int) float64 {
	if label < 0 || label >= len(probs) {
		panic("nn: BrierScore label out of range")
	}
	s := 0.0
	for i, p := range probs {
		d := -p
		if i == label {
			d = 1 - p
		}
		s += d * d
	}
	return s / float64(len(probs))
}

// NLL returns the negative log-likelihood −log probs[label], clamped to
// avoid infinities, the alternative uncertainty estimate mentioned in
// paper §5.2.2.
func NLL(probs tensor.Vector, label int) float64 {
	if label < 0 || label >= len(probs) {
		panic("nn: NLL label out of range")
	}
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}
