package nn

import (
	"math"
	"testing"
	"testing/quick"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

func buildMLP(rng *stats.RNG, dims ...int) *Network {
	var layers []Layer
	for i := 0; i < len(dims)-1; i++ {
		layers = append(layers, NewDense(dims[i], dims[i+1], rng))
		if i < len(dims)-2 {
			layers = append(layers, &ReLU{})
		}
	}
	return NewNetwork(layers...)
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, stats.NewRNG(1))
	copy(d.W.Data, []float64{1, 2, 3, 4})
	copy(d.B, []float64{0.5, -0.5})
	out := d.Forward(tensor.Vector{1, 1})
	want := tensor.Vector{3.5, 6.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("Dense forward = %v, want %v", out, want)
		}
	}
}

// TestGradientCheck verifies analytic gradients against central finite
// differences for a Dense→ReLU→Dense network under softmax cross-entropy.
func TestGradientCheck(t *testing.T) {
	rng := stats.NewRNG(42)
	net := buildMLP(rng, 4, 5, 3)
	in := tensor.Vector(rng.NormalVec(4, 0, 1))
	label := 2

	net.ZeroGrad()
	logits := net.Forward(in)
	_, grad := SoftmaxCrossEntropy(logits, label)
	net.Backward(grad)

	const eps = 1e-6
	for pi, p := range net.Params() {
		for j := 0; j < len(p.Value); j += 3 { // sample every third weight
			orig := p.Value[j]
			p.Value[j] = orig + eps
			lp, _ := SoftmaxCrossEntropy(net.Forward(in), label)
			p.Value[j] = orig - eps
			lm, _ := SoftmaxCrossEntropy(net.Forward(in), label)
			p.Value[j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad[j]
			if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, j, analytic, numeric)
			}
		}
	}
}

func TestGradientCheckBCE(t *testing.T) {
	rng := stats.NewRNG(43)
	net := buildMLP(rng, 3, 4, 3)
	in := tensor.Vector(rng.NormalVec(3, 0, 1))
	target := tensor.Vector{0.2, 0.9, 0.5}

	net.ZeroGrad()
	logits := net.Forward(in)
	_, grad := BCEWithLogits(logits, target)
	net.Backward(grad)

	const eps = 1e-6
	p := net.Params()[0]
	for j := 0; j < len(p.Value); j += 2 {
		orig := p.Value[j]
		p.Value[j] = orig + eps
		lp, _ := BCEWithLogits(net.Forward(in), target)
		p.Value[j] = orig - eps
		lm, _ := BCEWithLogits(net.Forward(in), target)
		p.Value[j] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.Grad[j]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("weight %d: analytic %v vs numeric %v", j, p.Grad[j], numeric)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	loss, grad := SoftmaxCrossEntropy(tensor.Vector{0, 0}, 0)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Errorf("loss = %v, want ln 2", loss)
	}
	if math.Abs(grad[0]+0.5) > 1e-12 || math.Abs(grad[1]-0.5) > 1e-12 {
		t.Errorf("grad = %v", grad)
	}
}

func TestBCEWithLogitsMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(44)
	logits := tensor.Vector(rng.NormalVec(8, 0, 2))
	target := tensor.Vector(rng.UniformVec(8, 0, 1))
	loss, _ := BCEWithLogits(logits, target)
	naive := 0.0
	for i, z := range logits {
		s := 1 / (1 + math.Exp(-z))
		naive += -(target[i]*math.Log(s) + (1-target[i])*math.Log(1-s))
	}
	naive /= float64(len(logits))
	if math.Abs(loss-naive) > 1e-9 {
		t.Errorf("stable BCE %v != naive %v", loss, naive)
	}
}

func TestBCEWithLogitsStability(t *testing.T) {
	loss, grad := BCEWithLogits(tensor.Vector{1000, -1000}, tensor.Vector{1, 0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) || grad.HasNaN() {
		t.Errorf("BCE unstable at extreme logits: loss=%v grad=%v", loss, grad)
	}
	if loss > 1e-6 {
		t.Errorf("perfect extreme prediction should have ~0 loss, got %v", loss)
	}
}

func TestMSEKnown(t *testing.T) {
	loss, grad := MSE(tensor.Vector{1, 2}, tensor.Vector{0, 0})
	if math.Abs(loss-2.5) > 1e-12 {
		t.Errorf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 || math.Abs(grad[1]-2) > 1e-12 {
		t.Errorf("MSE grad = %v", grad)
	}
}

func TestBrierScoreProperties(t *testing.T) {
	// Perfect prediction → 0.
	if s := BrierScore(tensor.Vector{1, 0, 0}, 0); s != 0 {
		t.Errorf("perfect Brier = %v", s)
	}
	// Fully wrong one-hot → 2/K.
	if s := BrierScore(tensor.Vector{0, 1, 0}, 0); math.Abs(s-2.0/3) > 1e-12 {
		t.Errorf("wrong one-hot Brier = %v, want 2/3", s)
	}
	g := stats.NewRNG(45)
	f := func(seed uint8) bool {
		probs := tensor.Softmax(tensor.Vector(g.NormalVec(4, 0, 2)))
		label := g.Intn(4)
		s := BrierScore(probs, label)
		return s >= 0 && s <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNLL(t *testing.T) {
	if v := NLL(tensor.Vector{1, 0}, 0); v != 0 {
		t.Errorf("NLL of certain correct = %v", v)
	}
	if v := NLL(tensor.Vector{0, 1}, 0); math.IsInf(v, 0) {
		t.Errorf("NLL should be clamped, got %v", v)
	}
}

func TestTrainXORAdam(t *testing.T) {
	rng := stats.NewRNG(7)
	net := buildMLP(rng, 2, 8, 2)
	opt := NewAdam(0.01)
	inputs := []tensor.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 500; epoch++ {
		for i, in := range inputs {
			net.ZeroGrad()
			logits := net.Forward(in)
			_, grad := SoftmaxCrossEntropy(logits, labels[i])
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	for i, in := range inputs {
		if got := net.Forward(in).ArgMax(); got != labels[i] {
			t.Fatalf("XOR(%v) predicted %d, want %d", in, got, labels[i])
		}
	}
}

func TestSGDMomentumReducesLoss(t *testing.T) {
	rng := stats.NewRNG(8)
	net := buildMLP(rng, 2, 6, 2)
	opt := NewSGD(0.1, 0.9)
	in := tensor.Vector{1, -1}
	first := -1.0
	var last float64
	for i := 0; i < 100; i++ {
		net.ZeroGrad()
		loss, grad := SoftmaxCrossEntropy(net.Forward(in), 1)
		if first < 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if last >= first {
		t.Errorf("SGD did not reduce loss: %v -> %v", first, last)
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := stats.NewRNG(9)
	net := buildMLP(rng, 3, 4, 2)
	in := tensor.Vector{1, 2, 3}
	before := net.Forward(in).Clone()
	snap := net.Snapshot()

	// Perturb the weights, confirm output changed, then restore.
	for _, p := range net.Params() {
		for j := range p.Value {
			p.Value[j] += 0.5
		}
	}
	if perturbed := net.Forward(in); perturbed.Dist(before) == 0 {
		t.Fatal("perturbation had no effect")
	}
	net.Restore(snap)
	after := net.Forward(in)
	if after.Dist(before) > 1e-12 {
		t.Errorf("Restore did not recover output: %v vs %v", after, before)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	rng := stats.NewRNG(10)
	a := buildMLP(rng, 3, 5, 2)
	b := buildMLP(stats.NewRNG(11), 3, 5, 2)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	in := tensor.Vector{0.1, 0.2, 0.3}
	if a.Forward(in).Dist(b.Forward(in)) > 1e-12 {
		t.Error("weights did not round-trip through MarshalBinary")
	}
	// Mismatched architecture must error, not panic.
	c := buildMLP(stats.NewRNG(12), 4, 5, 2)
	if err := c.UnmarshalBinary(data); err == nil {
		t.Error("UnmarshalBinary into wrong architecture should error")
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{Value: []float64{0, 0}, Grad: []float64{3, 4}}
	norm := ClipGrads([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	clipped := math.Sqrt(p.Grad[0]*p.Grad[0] + p.Grad[1]*p.Grad[1])
	if math.Abs(clipped-1) > 1e-9 {
		t.Errorf("post-clip norm = %v", clipped)
	}
	// Under the limit: untouched.
	p2 := &Param{Value: []float64{0}, Grad: []float64{0.5}}
	ClipGrads([]*Param{p2}, 1)
	if p2.Grad[0] != 0.5 {
		t.Error("ClipGrads touched in-bounds gradient")
	}
}

func TestParamCount(t *testing.T) {
	net := buildMLP(stats.NewRNG(13), 3, 4, 2)
	// Dense(3→4): 12+4, Dense(4→2): 8+2 → 26.
	if got := net.ParamCount(); got != 26 {
		t.Errorf("ParamCount = %d, want 26", got)
	}
}

func TestActivationsShapeAndValues(t *testing.T) {
	var r ReLU
	out := r.Forward(tensor.Vector{-1, 2})
	if out[0] != 0 || out[1] != 2 {
		t.Errorf("ReLU = %v", out)
	}
	back := r.Backward(tensor.Vector{5, 5})
	if back[0] != 0 || back[1] != 5 {
		t.Errorf("ReLU backward = %v", back)
	}
	var s Sigmoid
	so := s.Forward(tensor.Vector{0})
	if math.Abs(so[0]-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", so[0])
	}
	var th Tanh
	to := th.Forward(tensor.Vector{0})
	if to[0] != 0 {
		t.Errorf("Tanh(0) = %v", to[0])
	}
}
