package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates a running mean and variance in a single pass using
// Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations added so far.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 before any observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Histogram is an equal-width histogram over a fixed range, used for the
// empirical distributions ODIN's KL-divergence test compares.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi]. Observations outside the range are clamped to the edge bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Probabilities returns the additive-smoothed bin probabilities. Smoothing
// keeps every bin strictly positive so KL divergences stay finite.
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	denom := float64(h.total) + float64(len(h.Counts))
	for i, c := range h.Counts {
		p[i] = (float64(c) + 1) / denom
	}
	return p
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Counts = append([]int(nil), h.Counts...)
	return &c
}

// KLDivergence returns the Kullback–Leibler divergence KL(p || q) in nats
// between two discrete distributions of equal length. Zero entries in p
// contribute nothing; zero entries in q where p is positive yield +Inf.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 { //lint:allow floatcmp exact zero mass is a defined case of discrete KL, not a computed coincidence
			continue
		}
		if q[i] == 0 { //lint:allow floatcmp exact zero mass yields +Inf by definition
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// GaussianKL returns the KL divergence KL(N(mu1,var1) || N(mu2,var2))
// between two univariate Gaussians.
func GaussianKL(mu1, var1, mu2, var2 float64) float64 {
	if var1 <= 0 || var2 <= 0 {
		panic("stats: GaussianKL with non-positive variance")
	}
	return 0.5 * (var1/var2 + (mu2-mu1)*(mu2-mu1)/var2 - 1 + math.Log(var2/var1))
}
