// Package stats provides the statistical primitives the rest of the system
// is built on: a deterministic seeded random number generator, descriptive
// statistics (batch and online), Kolmogorov–Smirnov tests, and divergence
// measures between empirical distributions.
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness and the property-based tests reproducible.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random source used throughout the system.
// It wraps math/rand with convenience samplers for the distributions the
// simulator and the learning substrate need. An RNG is not safe for
// concurrent use; create one per goroutine via Split.
//
// Every underlying source draw is counted, so an RNG's position in its
// stream is fully described by (seed, draws) — see State and ResumeRNG.
// The counting shim delegates straight to the math/rand source, so the
// value streams are identical to a plain rand.New(rand.NewSource(seed)).
type RNG struct {
	r   *rand.Rand
	src *countingSource
}

// countingSource wraps the math/rand source and counts state advances.
// rand.Rand reaches the source only through Int63/Uint64, and each of
// those advances the lagged-Fibonacci state exactly one step, so `draws`
// source calls from a fresh seed reproduce the state bit-exactly. (This
// holds because RNG never exposes rand.Rand.Read, the one method with
// state outside the source.)
type countingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.seed = seed
	c.draws = 0
	c.src.Seed(seed)
}

// RNGState is a serializable description of an RNG's exact position in
// its stream: replaying Draws source steps from Seed reproduces the
// generator bit-identically.
//
//driftlint:snapshot encode=RNG.State decode=ResumeRNG
type RNGState struct {
	Seed  int64
	Draws uint64
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
	return &RNG{r: rand.New(src), src: src}
}

// State returns the generator's current stream position for
// checkpointing. ResumeRNG(g.State()) yields a generator that produces
// exactly the values g would produce next.
func (g *RNG) State() RNGState {
	return RNGState{Seed: g.src.seed, Draws: g.src.draws}
}

// ResumeRNG reconstructs a generator at the recorded stream position by
// replaying the counted source draws. Cost is O(Draws) — tens of
// nanoseconds per million draws of fast-forward per checkpoint restore.
func ResumeRNG(s RNGState) *RNG {
	g := NewRNG(s.Seed)
	for i := uint64(0); i < s.Draws; i++ {
		g.src.src.Uint64()
	}
	g.src.draws = s.Draws
	return g
}

// Split derives a new independent generator from this one. The derived
// stream is a deterministic function of the parent's state, so splitting at
// the same point in a run always yields the same child stream.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Reseed resets the generator to the exact state of a fresh NewRNG(seed):
// same value stream, draw counter back at zero. It lets pooled scratch
// generators (parallel.Pool's per-task children) be reused without
// reallocating the ~5KB lagged-Fibonacci source on every fan-out.
func (g *RNG) Reseed(seed int64) {
	g.src.Seed(seed)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// StdNormal returns a sample from N(0, 1).
func (g *RNG) StdNormal() float64 { return g.r.NormFloat64() }

// NormalVec fills a new length-n vector with independent N(mu, sigma^2)
// samples.
func (g *RNG) NormalVec(n int, mu, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Normal(mu, sigma)
	}
	return v
}

// UniformVec fills a new length-n vector with independent Uniform(lo, hi)
// samples.
func (g *RNG) UniformVec(n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Uniform(lo, hi)
	}
	return v
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Poisson returns a sample from a Poisson distribution with mean lambda,
// using Knuth's method for small lambda and a normal approximation for
// large lambda. Values are clamped at zero.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(g.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function, mirroring rand.Shuffle.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Choice returns a uniform random index weighted by the non-negative
// weights. It panics if weights is empty or sums to zero.
func (g *RNG) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Choice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("stats: Choice weights sum to zero")
	}
	target := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
