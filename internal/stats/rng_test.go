package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependentButDeterministic(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	ca := a.Split()
	cb := b.Split()
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split children from equal parents diverged at %d", i)
		}
	}
	// Parent stream continues and should differ from the child's stream.
	if a.Float64() == ca.Float64() {
		t.Log("parent and child drew the same value once (possible but unlikely)")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(-2, 3)
		if x < -2 || x >= 3 {
			t.Fatalf("Uniform(-2,3) = %v out of range", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(99)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(g.Normal(5, 2))
	}
	if math.Abs(w.Mean()-5) > 0.1 {
		t.Errorf("Normal mean = %v, want ~5", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 0.1 {
		t.Errorf("Normal stddev = %v, want ~2", w.StdDev())
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, lambda := range []float64{0.5, 3, 12, 50} {
		var w Welford
		for i := 0; i < 20000; i++ {
			w.Add(float64(g.Poisson(lambda)))
		}
		if math.Abs(w.Mean()-lambda) > 0.15*lambda+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, w.Mean())
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	g := NewRNG(4)
	f := func(scale uint8) bool {
		lambda := float64(scale) / 4
		return g.Poisson(lambda) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	g := NewRNG(5)
	if got := g.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	g := NewRNG(8)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Choice([]float64{1, 2, 7})]++
	}
	total := float64(counts[0] + counts[1] + counts[2])
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Choice frequency[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	g := NewRNG(8)
	for _, weights := range [][]float64{{}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", weights)
				}
			}()
			g.Choice(weights)
		}()
	}
}

func TestNormalVecLen(t *testing.T) {
	g := NewRNG(2)
	if got := len(g.NormalVec(17, 0, 1)); got != 17 {
		t.Errorf("NormalVec length = %d, want 17", got)
	}
	if got := len(g.UniformVec(9, 0, 1)); got != 9 {
		t.Errorf("UniformVec length = %d, want 9", got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}
