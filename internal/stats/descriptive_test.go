package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	if Mean([]float64{3}) != 3 {
		t.Error("Mean of singleton wrong")
	}
}

func TestMinMaxQuantile(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Quantile 0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Errorf("Quantile 1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 4, 1e-12) {
		t.Errorf("median = %v, want 4", q)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	g := NewRNG(21)
	f := func(n uint8) bool {
		size := int(n)%50 + 2
		xs := g.NormalVec(size, 1, 3)
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return almost(w.Mean(), Mean(xs), 1e-9) &&
			almost(w.Variance(), Variance(xs), 1e-9) &&
			w.Count() == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0.1, 0.3, 0.6, 0.9, -5, 5} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// Clamped values land on edge bins.
	if h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Errorf("edge bins = %v", h.Counts)
	}
	p := h.Probabilities()
	sum := 0.0
	for _, v := range p {
		if v <= 0 {
			t.Errorf("smoothed probability not positive: %v", p)
		}
		sum += v
	}
	if !almost(sum, 1, 1e-12) {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(0.5)
	c := h.Clone()
	c.Add(0.5)
	if h.Total() == c.Total() {
		t.Error("Clone shares state with original")
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	if d := KLDivergence(p, p); !almost(d, 0, 1e-12) {
		t.Errorf("KL(p||p) = %v", d)
	}
	q := []float64{0.5, 0.3, 0.2}
	if d := KLDivergence(p, q); d <= 0 {
		t.Errorf("KL(p||q) = %v, want > 0", d)
	}
	if d := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("KL with zero support = %v, want +Inf", d)
	}
}

func TestKLDivergenceNonNegativeProperty(t *testing.T) {
	g := NewRNG(77)
	f := func(seed uint8) bool {
		p := normalize(g.UniformVec(5, 0.01, 1))
		q := normalize(g.UniformVec(5, 0.01, 1))
		return KLDivergence(p, q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func normalize(v []float64) []float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / s
	}
	return out
}

func TestGaussianKL(t *testing.T) {
	if d := GaussianKL(0, 1, 0, 1); !almost(d, 0, 1e-12) {
		t.Errorf("identical Gaussians KL = %v", d)
	}
	if d := GaussianKL(0, 1, 3, 1); !almost(d, 4.5, 1e-12) {
		t.Errorf("mean-shift KL = %v, want 4.5", d)
	}
	if d := GaussianKL(1, 2, 0, 3); d <= 0 {
		t.Errorf("distinct Gaussians KL = %v, want > 0", d)
	}
}
