package stats

import (
	"math"
	"sort"
)

// KSUniform runs a one-sample Kolmogorov–Smirnov test of xs against the
// Uniform[0,1] distribution. It returns the KS statistic D and the
// asymptotic p-value. This is the classical tool the paper cites as the
// non-parametric baseline for distribution-change testing, and it doubles
// as the oracle our property tests use to check Theorem 4.1 (conformal
// p-values are uniform under exchangeability).
func KSUniform(xs []float64) (d, pvalue float64) {
	n := len(xs)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d = 0
	for i, x := range sorted {
		cdf := math.Min(math.Max(x, 0), 1)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(cdf - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(cdf - hi); diff > d {
			d = diff
		}
	}
	return d, ksPValue(d, float64(n))
}

// KSTwoSample runs a two-sample Kolmogorov–Smirnov test between xs and ys.
// It returns the KS statistic D and the asymptotic p-value.
func KSTwoSample(xs, ys []float64) (d, pvalue float64) {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return 0, 1
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	d = 0
	for i < n && j < m {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	en := float64(n) * float64(m) / float64(n+m)
	return d, ksPValue(d, en)
}

// ksPValue returns the asymptotic Kolmogorov distribution tail probability
// for statistic d with effective sample size en.
func ksPValue(d, en float64) float64 {
	if d <= 0 {
		return 1
	}
	lambda := (math.Sqrt(en) + 0.12 + 0.11/math.Sqrt(en)) * d
	// Kolmogorov asymptotic series: 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
