package stats

import (
	"testing"
)

func TestKSUniformAcceptsUniform(t *testing.T) {
	g := NewRNG(13)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := g.UniformVec(500, 0, 1)
		_, p := KSUniform(xs)
		if p < 0.05 {
			rejections++
		}
	}
	// At the 5% level we expect ~2 rejections in 40 trials.
	if rejections > 6 {
		t.Errorf("KSUniform rejected true uniforms %d/%d times", rejections, trials)
	}
}

func TestKSUniformRejectsNonUniform(t *testing.T) {
	g := NewRNG(14)
	xs := make([]float64, 500)
	for i := range xs {
		x := g.Float64()
		xs[i] = x * x // squashed toward 0
	}
	d, p := KSUniform(xs)
	if p > 0.001 {
		t.Errorf("KSUniform on x^2 samples: D=%v p=%v, want tiny p", d, p)
	}
}

func TestKSUniformEmpty(t *testing.T) {
	d, p := KSUniform(nil)
	if d != 0 || p != 1 {
		t.Errorf("KSUniform(nil) = %v,%v", d, p)
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	g := NewRNG(15)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := g.NormalVec(300, 0, 1)
		ys := g.NormalVec(300, 0, 1)
		_, p := KSTwoSample(xs, ys)
		if p < 0.05 {
			rejections++
		}
	}
	if rejections > 6 {
		t.Errorf("KSTwoSample rejected equal distributions %d/%d times", rejections, trials)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	g := NewRNG(16)
	xs := g.NormalVec(300, 0, 1)
	ys := g.NormalVec(300, 2, 1)
	d, p := KSTwoSample(xs, ys)
	if p > 1e-6 {
		t.Errorf("KSTwoSample on shifted normals: D=%v p=%v, want tiny p", d, p)
	}
}

func TestKSTwoSampleSymmetry(t *testing.T) {
	g := NewRNG(17)
	xs := g.NormalVec(100, 0, 1)
	ys := g.NormalVec(150, 0.5, 2)
	d1, p1 := KSTwoSample(xs, ys)
	d2, p2 := KSTwoSample(ys, xs)
	if d1 != d2 || p1 != p2 {
		t.Errorf("KSTwoSample not symmetric: (%v,%v) vs (%v,%v)", d1, p1, d2, p2)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	d, p := KSTwoSample(nil, []float64{1, 2})
	if d != 0 || p != 1 {
		t.Errorf("KSTwoSample with empty sample = %v,%v", d, p)
	}
}

func TestKSPValueBounds(t *testing.T) {
	for _, d := range []float64{0, 0.01, 0.1, 0.5, 1} {
		for _, n := range []float64{5, 50, 5000} {
			p := ksPValue(d, n)
			if p < 0 || p > 1 {
				t.Errorf("ksPValue(%v,%v) = %v out of [0,1]", d, n, p)
			}
		}
	}
	// Larger D must not increase the p-value.
	if ksPValue(0.5, 100) > ksPValue(0.1, 100) {
		t.Error("ksPValue not monotone in D")
	}
}
