package videodrift

import "sync"

// SafeMonitor wraps a Monitor with a mutex so multiple goroutines (e.g.
// per-camera decoders feeding one logical stream) can share it. The
// underlying pipeline is inherently sequential — the martingale's state
// depends on frame order — so SafeMonitor serializes Process calls rather
// than parallelizing them; use one Monitor per stream for throughput.
type SafeMonitor struct {
	mu  sync.Mutex
	mon *Monitor
}

// NewSafeMonitor builds a mutex-guarded monitor (see NewMonitor).
func NewSafeMonitor(models []*Model, labeler Labeler, opts Options) *SafeMonitor {
	return &SafeMonitor{mon: NewMonitor(models, labeler, opts)}
}

// Process runs one frame through the monitor. Safe for concurrent use;
// frames are folded in arrival order under the lock.
func (s *SafeMonitor) Process(f Frame) Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Process(f)
}

// Current returns the name of the deployed model.
func (s *SafeMonitor) Current() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Current()
}

// Models returns the names of all provisioned models.
func (s *SafeMonitor) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Models()
}

// Stats summarizes the monitor's activity so far. The metrics are read
// under the same mutex that serializes Process, so concurrent callers
// get a consistent snapshot rather than racing the internal monitor.
func (s *SafeMonitor) Stats() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Stats()
}

// Telemetry returns the monitor's tracer (nil when Options.Tracer was
// not set). The tracer has its own internal lock, so the returned
// pointer may be snapshotted or exported concurrently with Process.
func (s *SafeMonitor) Telemetry() *Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Telemetry()
}
