package videodrift

import (
	"testing"

	"videodrift/internal/faults"
	"videodrift/internal/vidsim"
)

// batchTestStreams builds the 3-shard batching fixture: one steady shard
// and two that drift to night at different offsets, all the same length.
func batchTestStreams() [][]Frame {
	streams := make([][]Frame, 3)
	streams[0] = vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 220, 1, 51)
	streams[1] = append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 80, 1, 52),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 140, 1, 53)...)
	streams[2] = append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 140, 1, 54),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 80, 1, 55)...)
	return streams
}

// serialReference replays shard s's stream through a standalone Monitor
// with the shard's seed, returning its per-frame events and the monitor
// for state comparison.
func serialReference(t *testing.T, models []*Model, opts Options, s int, stream []Frame) ([]Event, *Monitor) {
	t.Helper()
	shardOpts := opts
	shardOpts.Pipeline.Seed += int64(s)
	ref := NewMonitor(models, facadeLabeler, shardOpts)
	events := make([]Event, len(stream))
	for i, f := range stream {
		events[i] = ref.Process(f)
	}
	return events, ref
}

// TestShardedBatchedMatchesSerial is the micro-batching contract at the
// supervisor layer: ProcessBatches must emit bit-identical per-shard
// event streams to serial per-frame feeding, for any batch size
// (including a ragged tail) and any worker count.
func TestShardedBatchedMatchesSerial(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)
	models := []*Model{day, night}
	streams := batchTestStreams()
	n := len(streams[0])

	for _, workers := range []int{1, 8} {
		for _, size := range []int{1, 7, 32} {
			sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
				Options: opts, Shards: len(streams), Workers: workers,
			})
			got := make([][]Event, len(streams))
			for at := 0; at < n; at += size {
				end := min(at+size, n)
				batches := make([][]Frame, len(streams))
				for s := range streams {
					batches[s] = streams[s][at:end]
				}
				for s, evs := range mustBatches(sm, batches) {
					got[s] = append(got[s], evs...)
				}
			}
			for s := range streams {
				want, ref := serialReference(t, models, opts, s, streams[s])
				for i := range want {
					if got[s][i] != want[i] {
						t.Fatalf("workers=%d batch=%d shard %d frame %d: event %+v, serial %+v",
							workers, size, s, i, got[s][i], want[i])
					}
				}
				if sm.Shard(s).Current() != ref.Current() {
					t.Fatalf("workers=%d batch=%d shard %d: deployed %q, serial %q",
						workers, size, s, sm.Shard(s).Current(), ref.Current())
				}
				if sm.ShardStats(s) != ref.Stats() {
					t.Errorf("workers=%d batch=%d shard %d: stats %+v, serial %+v",
						workers, size, s, sm.ShardStats(s), ref.Stats())
				}
			}
		}
	}
}

// TestShardedBatcher pins the Batcher's count-based flush policy: Add
// holds frames until a shard's queue reaches the batch size, a flush
// drains every queue, the trailing Flush delivers the ragged tail, and
// the delivered events are bit-identical to serial feeding.
func TestShardedBatcher(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)
	models := []*Model{day, night}
	streams := batchTestStreams()
	n := len(streams[0])

	const size = 16
	sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
		Options: opts, Shards: len(streams), Workers: 2,
	})
	b := sm.NewBatcher(size)
	mustFlush := func(evs [][]Event, err error) [][]Event {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	if mustFlush(b.Flush()) != nil {
		t.Fatal("Flush on an empty batcher returned events")
	}
	got := make([][]Event, len(streams))
	collect := func(flushed [][]Event) {
		for s, evs := range flushed {
			got[s] = append(got[s], evs...)
		}
	}
	// Feed lockstep; the stream length is not a multiple of the batch
	// size, so the tail exercises the explicit Flush path.
	for step := 0; step < n; step++ {
		for s := range streams {
			before := b.Queued(s)
			flushed := mustFlush(b.Add(s, streams[s][step]))
			// The policy is count-based: a flush fires exactly when the
			// adding shard's queue reaches the batch size, draining every
			// queue (the others may be shorter — flushes are ragged).
			if wantFlush := before+1 >= size; (flushed != nil) != wantFlush {
				t.Fatalf("step %d shard %d: flushed=%v, want %v (queued %d before)",
					step, s, flushed != nil, wantFlush, before)
			}
			if q := b.Queued(s); q >= size {
				t.Fatalf("step %d shard %d: queue at %d, never drained", step, s, q)
			}
			collect(flushed)
		}
	}
	if n%size != 0 && b.Queued(0) == 0 {
		t.Fatal("expected a ragged tail left queued before the final Flush")
	}
	collect(mustFlush(b.Flush()))
	if b.Queued(0) != 0 {
		t.Fatal("Flush left frames queued")
	}

	for s := range streams {
		want, _ := serialReference(t, models, opts, s, streams[s])
		if len(got[s]) != len(want) {
			t.Fatalf("shard %d: %d events for %d frames", s, len(got[s]), len(want))
		}
		for i := range want {
			if got[s][i] != want[i] {
				t.Fatalf("shard %d frame %d: event %+v, serial %+v", s, i, got[s][i], want[i])
			}
		}
	}
}

// TestChaosBatchedEquivalence injects worker panics that land mid-batch
// and checks the batched supervised run against a fault-free serial run:
// events, deployments and the forensics recorder's state (pre-roll ring,
// declarations) must be bit-identical. This is the regression test for
// batch-granular crash recovery — without the forensics rewind, the
// batch re-run after a restore would duplicate pre-roll frames.
func TestChaosBatchedEquivalence(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	opts.Forensics = ForensicsConfig{Enabled: true}
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)
	models := []*Model{day, night}
	streams := batchTestStreams()
	n := len(streams[0])

	const size = 8
	// Panics chosen mid-batch (frame ≡ 3 mod 8): during shard 1's steady
	// day phase (pre-roll collecting), right after its drift window, and
	// deep in shard 2's day phase.
	inj := faults.NewInjector(faults.Schedule{Seed: 7, Faults: []faults.Fault{
		{Shard: 1, Frame: 35, Kind: faults.KindWorkerPanic},
		{Shard: 1, Frame: 131, Kind: faults.KindWorkerPanic},
		{Shard: 2, Frame: 67, Kind: faults.KindWorkerPanic},
	}})
	sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
		Options: opts, Shards: len(streams), Workers: 8, Faults: inj,
	})
	got := make([][]Event, len(streams))
	for at := 0; at < n; at += size {
		end := min(at+size, n)
		batches := make([][]Frame, len(streams))
		for s := range streams {
			batches[s] = streams[s][at:end]
		}
		for s, evs := range mustBatches(sm, batches) {
			got[s] = append(got[s], evs...)
		}
	}

	h := sm.Health()
	if restarts := h.Shards[1].Restarts + h.Shards[2].Restarts; restarts != 3 {
		t.Fatalf("supervised restarts = %d, want 3", restarts)
	}
	for s := range streams {
		want, ref := serialReference(t, models, opts, s, streams[s])
		for i := range want {
			if got[s][i] != want[i] {
				t.Fatalf("shard %d frame %d: event %+v, fault-free serial %+v", s, i, got[s][i], want[i])
			}
		}
		if sm.Shard(s).Current() != ref.Current() {
			t.Fatalf("shard %d: deployed %q, fault-free serial %q", s, sm.Shard(s).Current(), ref.Current())
		}

		gs, ws := sm.Shard(s).Forensics().State(), ref.Forensics().State()
		if gs.Frame != ws.Frame || gs.Pending != ws.Pending {
			t.Fatalf("shard %d recorder position: frame %d/pending %v, serial %d/%v",
				s, gs.Frame, gs.Pending, ws.Frame, ws.Pending)
		}
		if len(gs.Ring) != len(ws.Ring) || gs.BaseFrame != ws.BaseFrame {
			t.Fatalf("shard %d pre-roll: %d frames from %d, serial %d from %d — batch re-run corrupted the ring",
				s, len(gs.Ring), gs.BaseFrame, len(ws.Ring), ws.BaseFrame)
		}
		for i := range gs.Ring {
			g, w := gs.Ring[i], ws.Ring[i]
			if g.Index != w.Index || g.Condition != w.Condition || len(g.Pixels) != len(w.Pixels) {
				t.Fatalf("shard %d pre-roll frame %d differs from serial: %d/%q vs %d/%q",
					s, i, g.Index, g.Condition, w.Index, w.Condition)
			}
			for p := range g.Pixels {
				if g.Pixels[p] != w.Pixels[p] {
					t.Fatalf("shard %d pre-roll frame %d pixel %d differs from serial", s, i, p)
				}
			}
		}
		if len(gs.Declarations) != len(ws.Declarations) {
			t.Fatalf("shard %d: %d declarations, serial %d", s, len(gs.Declarations), len(ws.Declarations))
		}
		for i := range gs.Declarations {
			g, w := gs.Declarations[i], ws.Declarations[i]
			if g.ID != w.ID || g.Frame != w.Frame || g.BaseFrame != w.BaseFrame ||
				len(g.Frames) != len(w.Frames) || g.Resolved != w.Resolved ||
				g.Resolution.Frame != w.Resolution.Frame || g.Resolution.Model != w.Resolution.Model {
				t.Fatalf("shard %d declaration %d: %+v, serial %+v", s, i, g, w)
			}
		}
	}
}
