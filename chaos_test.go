package videodrift

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/faults"
	"videodrift/internal/store"
	"videodrift/internal/vidsim"
)

// deliverStreams runs each shard's clean stream through the injector's
// frame-level faults (corruption, drops, duplicates) and truncates the
// ragged results to a common length so they can be fed batch-wise. The
// truncation point is part of the schedule's deterministic outcome.
func deliverStreams(inj *faults.Injector, streams [][]Frame) [][]Frame {
	delivered := make([][]Frame, len(streams))
	minLen := -1
	for s := range streams {
		for i, f := range streams[s] {
			delivered[s] = append(delivered[s], inj.Apply(s, i, f)...)
		}
		if minLen < 0 || len(delivered[s]) < minLen {
			minLen = len(delivered[s])
		}
	}
	for s := range delivered {
		delivered[s] = delivered[s][:minLen]
	}
	return delivered
}

// survivors drops the frames the admission gate will quarantine,
// leaving the stream a clean reference monitor should see.
func survivors(frames []Frame) []Frame {
	var out []Frame
	for _, f := range frames {
		if core.FrameProblem(f, 16, 16) == "" {
			out = append(out, f)
		}
	}
	return out
}

// fogStream renders a live clip of a condition novel to both
// provisioned models (near-invisible objects in uniform mid-gray), so a
// drift on it must end in training rather than reselection.
func fogStream(n int, seed int64) []Frame {
	fog := vidsim.Condition{
		Name: "fog", Background: 0.50, BgNoise: 0.05, BgDrift: 0.004,
		CarRate: 5.5, BusRate: 0, Burst: 0.5,
		CarIntensity: 0.55, BusIntensity: 0.44, ObjNoise: 0.03,
		ObjScale: 1.2, BandLo: 0.2, BandHi: 0.6, SpeedX: 0.7, SpeedVar: 0.3,
	}
	return vidsim.GenerateTrainingStride(fog, 16, 16, n, 1, seed)
}

// TestChaosEquivalence is the harness's headline guarantee: a seeded
// chaos run — NaN/Inf pixels, wrong dimensions, dropped and duplicated
// frames, injected worker panics with supervised restarts — leaves the
// drift machinery's decisions on the surviving frames bit-identical to
// a clean run that never saw the faults. Checked for both selectors at
// 1 and 4 shards.
func TestChaosEquivalence(t *testing.T) {
	models := getCkptModels()
	const total = 200

	for _, tc := range []struct {
		name     string
		selector Selector
		shards   int
		seed     int64
	}{
		{"msbi-shards1", MSBI, 1, 701},
		{"msbi-shards4", MSBI, 4, 702},
		{"msbo-shards1", MSBO, 1, 703},
		{"msbo-shards4", MSBO, 4, 704},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sched := faults.Generate(tc.seed, faults.GenConfig{
				Shards: tc.shards, Frames: total,
				CorruptRate: 0.04, DropRate: 0.02, DupRate: 0.02,
				Panics: 2,
			})
			streams := make([][]Frame, tc.shards)
			for s := range streams {
				streams[s] = driftStream(total, 60+10*s, tc.seed+int64(100*s))
			}
			inj := faults.NewInjector(sched)
			delivered := deliverStreams(inj, streams)

			opts := Defaults(facadeDim, facadeClasses)
			opts.Pipeline.Selector = tc.selector
			chaos := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
				Options: opts, Shards: tc.shards, Faults: inj,
			})
			events := runBatches(chaos, delivered, 0, len(delivered[0]))

			// The reference fleet never sees faults: same seeds, fed only
			// the frames that survive the gate.
			ref := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
				Options: opts, Shards: tc.shards,
			})
			for s := 0; s < tc.shards; s++ {
				clean := survivors(delivered[s])
				quarantined := len(delivered[s]) - len(clean)
				var kept []Event
				for _, ev := range events[s] {
					if !ev.Quarantined {
						kept = append(kept, ev)
					}
				}
				if len(kept) != len(clean) {
					t.Fatalf("shard %d: %d surviving events for %d surviving frames (quarantined %d)",
						s, len(kept), len(clean), quarantined)
				}
				mon := ref.Shard(s)
				for j, f := range clean {
					want := mon.Process(f)
					if kept[j] != want {
						t.Fatalf("shard %d frame %d: chaos event %+v, clean event %+v", s, j, kept[j], want)
					}
				}
				if got, want := chaos.Shard(s).Current(), mon.Current(); got != want {
					t.Errorf("shard %d: deployed %q, clean run deployed %q", s, got, want)
				}
				cm, rm := chaos.ShardStats(s), mon.Stats()
				if cm.QuarantinedFrames != quarantined {
					t.Errorf("shard %d: QuarantinedFrames = %d, want %d", s, cm.QuarantinedFrames, quarantined)
				}
				if cm.Frames != rm.Frames+quarantined || cm.ModelInvocations != rm.ModelInvocations ||
					cm.DriftsDetected != rm.DriftsDetected {
					t.Errorf("shard %d: chaos metrics %+v vs clean %+v", s, cm, rm)
				}
			}
			h := chaos.Health()
			if !h.Serving() || h.State == HealthFailed {
				t.Errorf("fleet health after recoverable chaos = %+v", h)
			}
			wantRestarts := inj.Stats().Count(faults.KindWorkerPanic)
			gotRestarts := 0
			for _, sh := range h.Shards {
				gotRestarts += sh.Restarts
			}
			if gotRestarts != wantRestarts {
				t.Errorf("worker restarts = %d, want %d (fired panics)", gotRestarts, wantRestarts)
			}
		})
	}
}

// TestChaosReplayDeterminism replays three generated schedules end to
// end twice each: identical seeds must yield bit-identical event
// streams, deployments and metrics — a chaos run is as reproducible as
// a clean one.
func TestChaosReplayDeterminism(t *testing.T) {
	models := getCkptModels()
	const shards, total = 2, 160

	for _, seed := range []int64{11, 12, 13} {
		sched := faults.Generate(seed, faults.GenConfig{
			Shards: shards, Frames: total,
			CorruptRate: 0.05, DropRate: 0.02, DupRate: 0.02,
			Panics: 3, TrainFailures: 1,
		})
		run := func() ([][]Event, []string, Metrics) {
			inj := faults.NewInjector(sched)
			streams := make([][]Frame, shards)
			for s := range streams {
				streams[s] = driftStream(total, 50+20*s, seed+int64(10*s))
			}
			delivered := deliverStreams(inj, streams)
			opts := Defaults(facadeDim, facadeClasses)
			sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
				Options: opts, Shards: shards, Faults: inj,
			})
			events := runBatches(sm, delivered, 0, len(delivered[0]))
			deployed := make([]string, shards)
			for s := range deployed {
				deployed[s] = sm.Shard(s).Current()
			}
			return events, deployed, sm.Stats()
		}
		e1, d1, m1 := run()
		e2, d2, m2 := run()
		for s := range e1 {
			if len(e1[s]) != len(e2[s]) {
				t.Fatalf("seed %d shard %d: replay produced %d events vs %d", seed, s, len(e2[s]), len(e1[s]))
			}
			for j := range e1[s] {
				if e1[s][j] != e2[s][j] {
					t.Fatalf("seed %d shard %d frame %d: %+v vs %+v", seed, s, j, e1[s][j], e2[s][j])
				}
			}
			if d1[s] != d2[s] {
				t.Fatalf("seed %d shard %d: deployed %q vs %q", seed, s, d1[s], d2[s])
			}
		}
		if m1 != m2 {
			t.Fatalf("seed %d: metrics %+v vs %+v", seed, m1, m2)
		}
	}
}

// TestChaosCrashLoopBreaker wedges one shard in a deterministic crash
// loop (a panic that re-fires on every supervised re-feed) and checks
// the circuit breaker: the shard fails after MaxRestarts restarts, its
// remaining frames are dropped and counted, and the healthy shard's
// stream is untouched.
func TestChaosCrashLoopBreaker(t *testing.T) {
	models := getCkptModels()
	const total, panicAt, maxRestarts = 20, 5, 2

	inj := faults.NewInjector(faults.Schedule{Seed: 31, Faults: []faults.Fault{
		{Shard: 1, Frame: panicAt, Kind: faults.KindWorkerPanic, Times: 10},
	}})
	tracers := []*Tracer{NewTracer(TracerConfig{}), NewTracer(TracerConfig{})}
	opts := Defaults(facadeDim, facadeClasses)
	sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
		Options: opts, Shards: 2, Tracers: tracers,
		Faults: inj, MaxRestarts: maxRestarts,
	})
	streams := [][]Frame{
		driftStream(total, 10, 991),
		driftStream(total, 10, 992),
	}
	events := runBatches(sm, streams, 0, total)

	h := sm.Health()
	if h.State != HealthFailed || h.Serving() {
		t.Fatalf("fleet health after crash loop = %+v", h)
	}
	if h.Shards[0].State == HealthFailed || h.Shards[0].Restarts != 0 {
		t.Errorf("healthy shard affected: %+v", h.Shards[0])
	}
	bad := h.Shards[1]
	if bad.State != HealthFailed || bad.Restarts != maxRestarts {
		t.Errorf("failed shard: %+v, want failed with %d restarts", bad, maxRestarts)
	}
	if want := total - panicAt; bad.DroppedFrames != want {
		t.Errorf("DroppedFrames = %d, want %d", bad.DroppedFrames, want)
	}
	for j := panicAt; j < total; j++ {
		if events[1][j] != (Event{}) {
			t.Fatalf("failed shard emitted a non-zero event at frame %d: %+v", j, events[1][j])
		}
	}
	if tracers[1].Health() != HealthFailed {
		t.Errorf("failed shard tracer health = %v", tracers[1].Health())
	}
	snap := tracers[1].Snapshot()
	if snap.WorkerRestarts != maxRestarts {
		t.Errorf("telemetry WorkerRestarts = %d, want %d", snap.WorkerRestarts, maxRestarts)
	}

	// The healthy shard's events must match a solo clean run.
	ref := NewMonitor(models, facadeLabeler, opts)
	for j, f := range streams[0] {
		if want := ref.Process(f); events[0][j] != want {
			t.Fatalf("healthy shard frame %d: %+v, clean %+v", j, events[0][j], want)
		}
	}
}

// TestChaosStallWatchdog wedges a worker on an injected stall and
// drives the watchdog with a fake clock: Health must flip to stalled
// (not serving) while the frame is in flight past StallTimeout, and
// recover the moment the worker finishes. No wall-clock sleeping.
func TestChaosStallWatchdog(t *testing.T) {
	models := getCkptModels()
	const stallAt = 3

	inj := faults.NewInjector(faults.Schedule{Seed: 41, Faults: []faults.Fault{
		{Shard: 0, Frame: stallAt, Kind: faults.KindWorkerStall, Stall: time.Hour},
	}})
	entered := make(chan struct{})
	release := make(chan struct{})
	inj.SetSleeper(func(time.Duration) {
		close(entered)
		<-release
	})
	var nanos atomic.Int64
	nanos.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())

	opts := Defaults(facadeDim, facadeClasses)
	sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
		Options: opts, Shards: 1, Faults: inj,
		StallTimeout: time.Second,
		Clock:        func() time.Time { return time.Unix(0, nanos.Load()) },
	})
	stream := driftStream(10, 5, 881)
	for j := 0; j < stallAt; j++ {
		mustBatch(sm, []Frame{stream[j]})
	}
	if h := sm.Health(); h.Stalled || !h.Serving() {
		t.Fatalf("health before stall = %+v", h)
	}

	done := make(chan []Event)
	go func() { done <- mustBatch(sm, []Frame{stream[stallAt]}) }()
	<-entered
	nanos.Add(int64(5 * time.Second))
	h := sm.Health()
	if !h.Stalled || h.Serving() || !h.Shards[0].Stalled || h.Shards[0].State != HealthDegraded {
		t.Fatalf("health mid-stall = %+v, want stalled and not serving", h)
	}
	close(release)
	<-done
	if h := sm.Health(); h.Stalled || !h.Serving() {
		t.Fatalf("health after stall cleared = %+v", h)
	}
}

// TestChaosCheckpointRetry drives checkpoint saves through a FlakyFS
// that tears the first write at a scheduled byte offset, wrapped in the
// capped-backoff retry policy driftserve uses: the failure is counted
// and traced, the retry lands, and LoadLatest returns the checkpoint.
func TestChaosCheckpointRetry(t *testing.T) {
	models := getCkptModels()
	opts := Defaults(facadeDim, facadeClasses)
	mon := NewMonitor(models, facadeLabeler, opts)
	for _, f := range driftStream(40, 20, 551) {
		mon.Process(f)
	}
	cp := mon.Checkpoint()

	ffs := faults.NewFlakyFS(store.NewMemFS(), faults.Schedule{
		CheckpointFaults: map[int]int{0: 64},
	})
	st, err := store.OpenFS("/ckpt", ffs)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(TracerConfig{})
	var sleeps int
	policy := faults.Policy{Attempts: 3, Base: time.Millisecond, Cap: time.Millisecond,
		Sleep: func(time.Duration) { sleeps++ }}
	err = policy.Do(func() error {
		_, serr := st.Save(cp)
		return serr
	}, func(attempt int, ferr error) {
		tr.CheckpointFailed(attempt, ferr.Error())
		if !errors.Is(ferr, faults.ErrInjected) {
			t.Fatalf("attempt %d failed with a real error: %v", attempt, ferr)
		}
	})
	if err != nil {
		t.Fatalf("save never succeeded: %v", err)
	}
	if ffs.Injured() != 1 || sleeps != 1 {
		t.Errorf("injured=%d sleeps=%d, want 1 and 1", ffs.Injured(), sleeps)
	}
	if snap := tr.Snapshot(); snap.CheckpointFailures != 1 {
		t.Errorf("telemetry CheckpointFailures = %d", snap.CheckpointFailures)
	}
	loaded, _, err := st.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest after retried save: %v", err)
	}
	if loaded.Frames != cp.Frames || len(loaded.Shards) != 1 {
		t.Errorf("recovered checkpoint frames=%d shards=%d, want %d and 1",
			loaded.Frames, len(loaded.Shards), cp.Frames)
	}
	resumed, err := Resume(loaded, facadeLabeler, opts)
	if err != nil {
		t.Fatalf("resume from retried checkpoint: %v", err)
	}
	if resumed.Current() != mon.Current() {
		t.Errorf("resumed deploys %q, original %q", resumed.Current(), mon.Current())
	}
}

// TestChaosTrainingFailureRecovery injects post-drift training failures
// into a sharded run on a novel distribution: the pipeline retries with
// frame-count backoff, health dips to degraded and recovers once the
// retrained model deploys, and the deployed-model sequence ends where
// the clean run's does.
func TestChaosTrainingFailureRecovery(t *testing.T) {
	models := getCkptModels()
	const total = 500

	inj := faults.NewInjector(faults.Schedule{Seed: 61, TrainFailures: 1})
	tracers := []*Tracer{NewTracer(TracerConfig{})}
	opts := Defaults(facadeDim, facadeClasses)
	opts.Pipeline.Selector = MSBI
	opts.Pipeline.TrainBackoffFrames = 8
	opts.Pipeline.NewModelFrames = 64
	// Scale down training so the novel model trains in test time.
	opts.Provision.VAEEpochs = 4
	opts.Provision.SampleCount = 80
	opts.Provision.EnsembleSize = 3
	opts.Provision.Classifier.Epochs = 30
	// A day-only registry leaves MSBI no acceptable candidate when the
	// stream turns to night, forcing a post-drift training.
	sm := NewShardedMonitor(models[:1], facadeLabeler, ShardedOptions{
		Options: opts, Shards: 1, Tracers: tracers, Faults: inj,
	})
	stream := driftStream(total, 60, 71)
	sawDegraded := false
	for _, f := range stream {
		mustBatch(sm, []Frame{f})
		if tracers[0].Health() == HealthDegraded {
			sawDegraded = true
		}
	}
	if inj.TrainingFailuresFired() < 1 {
		t.Fatal("no injected training failure fired; stream never drifted to training")
	}
	stats := sm.Stats()
	if stats.TrainingFailures < 1 || stats.ModelsTrained < 1 {
		t.Fatalf("stats after training chaos: %+v", stats)
	}
	if !sawDegraded {
		t.Error("health never reported degraded during training retries")
	}
	if h := tracers[0].Health(); h != HealthOK {
		t.Errorf("health after recovery = %v, want ok", h)
	}
	if snap := tracers[0].Snapshot(); snap.TrainingFailures < 1 {
		t.Errorf("telemetry TrainingFailures = %d", snap.TrainingFailures)
	}
}
