#!/usr/bin/env bash
# Runs the hot-path benchmarks behind the kNN kernel and the parallel
# selection engine (kNN scoring brute vs fast, Drift Inspector observe,
# MSBI worker/model scaling, sharded monitoring throughput) and writes
# the results as machine-readable JSON.
#
# Usage:  scripts/bench_knn.sh [out.json]
#   BENCHTIME=200ms COUNT=3 scripts/bench_knn.sh   # quicker / repeated runs
#   PROFILE=prof scripts/bench_knn.sh              # also capture profiles
#
# With PROFILE=<dir>, the run additionally writes cpu.out, mutex.out and
# block.out pprof profiles (plus the bench.test binary to resolve them)
# into <dir> — `go tool pprof prof/bench.test prof/cpu.out` shows where
# the kernel and the pool actually spend their time, and the mutex/block
# profiles expose any contention the work-stealing pool introduces.
#
# Output (default BENCH_knn.json): one entry per benchmark line with the
# parsed iteration count and every reported metric (ns/op, B/op,
# allocs/op, ns/frame) keyed by a JSON-safe unit name.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_knn.json}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}"

profflags=()
if [ -n "${PROFILE:-}" ]; then
	mkdir -p "$PROFILE"
	profflags=(
		-cpuprofile "$PROFILE/cpu.out"
		-mutexprofile "$PROFILE/mutex.out"
		-blockprofile "$PROFILE/block.out"
		-o "$PROFILE/bench.test"
	)
fi

raw=$(go test -run=NONE \
	-bench 'KNNScore|DriftInspectorObserve|Featurize$|MSBIParallel|ShardedThroughput' \
	-benchtime "$benchtime" -count "$count" "${profflags[@]}" .)
printf '%s\n' "$raw" >&2
if [ -n "${PROFILE:-}" ]; then
	echo "profiles in $PROFILE: cpu.out mutex.out block.out (resolve with $PROFILE/bench.test)" >&2
fi

printf '%s\n' "$raw" | awk -v date="$(date -u +%FT%TZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	entry = sprintf("{\"name\":\"%s\",\"iterations\":%s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		if (unit == "ns/op")          key = "ns_per_op"
		else if (unit == "B/op")      key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else {
			key = unit
			gsub(/\//, "_per_", key)
			gsub(/[^A-Za-z0-9_]/, "_", key)
		}
		entry = entry sprintf(",\"%s\":%s", key, $i)
	}
	entries[n++] = entry "}"
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++)
		printf "    %s%s\n", entries[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}
' >"$out"
echo "wrote $out" >&2
