#!/usr/bin/env sh
# Run the repo's full lint gate locally — the same checks CI enforces
# (see .github/workflows/ci.yml). staticcheck and govulncheck are
# skipped gracefully when not installed; everything else is stdlib-only.
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> driftlint"
go run ./cmd/driftlint ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck"
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck"
	govulncheck ./...
else
	echo "==> govulncheck not installed; skipping (CI runs it)"
fi

echo "lint OK"
