#!/usr/bin/env bash
# Bench-regression smoke: re-runs the regression-gated hot-path
# benchmarks (the kNN kernel fast path and the sharded monitoring
# fan-out) and fails when any of them lands more than THRESHOLD percent
# slower than the committed BENCH_knn.json baseline.
#
# Usage:  scripts/bench_regress.sh [baseline.json]
#   THRESHOLD=25 BENCHTIME=300ms COUNT=3 scripts/bench_regress.sh
#
# The best (minimum) ns/op across COUNT runs is compared, so transient
# scheduler noise does not fail the gate; THRESHOLD defaults to 25% —
# loose enough to absorb machine-to-machine variance on CI runners,
# tight enough to catch a real kernel or supervisor regression. Faster
# is always fine: the gate is one-sided. Regenerate the baseline with
# scripts/bench_knn.sh after an intentional perf change.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_knn.json}"
threshold="${THRESHOLD:-25}"
benchtime="${BENCHTIME:-300ms}"
count="${COUNT:-3}"

if [ ! -f "$baseline" ]; then
	echo "bench_regress: baseline $baseline not found (run scripts/bench_knn.sh)" >&2
	exit 1
fi

# The gated set: kernel-regime kNN scoring and the sharded fan-out.
pattern='KNNScore/sigma512x64|ShardedThroughput'

raw=$(go test -run=NONE -bench "$pattern" -benchtime "$benchtime" -count "$count" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v thr="$threshold" -v baseline="$baseline" '
BEGIN {
	# Pull ns_per_op per benchmark out of the committed JSON (one
	# benchmark object per line; no jq in the image).
	while ((getline line < baseline) > 0) {
		if (line !~ /"name":/ || line !~ /"ns_per_op":/) continue
		name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
		ns = line; sub(/.*"ns_per_op":/, "", ns); sub(/[,}].*/, "", ns)
		base[name] = ns + 0
	}
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	if ($4 != "ns/op") next
	ns = $3 + 0
	if (!(name in cur) || ns < cur[name]) cur[name] = ns
	order[name] = ++seen[name] > 1 ? order[name] : ++n
	names[order[name]] = name
}
END {
	status = 0
	for (i = 1; i <= n; i++) {
		name = names[i]
		if (!(name in base)) {
			printf "  skip      %-55s no committed baseline\n", name
			continue
		}
		delta = (cur[name] / base[name] - 1) * 100
		verdict = "ok"
		if (delta > thr) { verdict = "REGRESSION"; status = 1 }
		printf "  %-9s %-55s %11.1f ns/op vs %11.1f committed (%+.1f%%)\n",
			verdict, name, cur[name], base[name], delta
	}
	if (n == 0) { print "bench_regress: no benchmark lines parsed"; status = 1 }
	exit status
}'
