#!/usr/bin/env bash
# Network-ingestion loopback soak: builds driftserve, driftfeed and
# drifttool, starts driftserve in ingest mode on a loopback port, feeds
# it several tenant streams over the real wire protocol with driftfeed
# (optionally with injected wire faults), and asserts through
# `drifttool health` that the server is healthy, every tenant attached,
# and not a single frame was dropped — the backpressure-not-loss
# contract, end to end over real sockets.
#
# Usage:  scripts/soak.sh
#   TENANTS=4 FRAMES=300 NET_FAULTS=97 scripts/soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${TENANTS:-3}"
frames="${FRAMES:-200}"
net_faults="${NET_FAULTS:-97}"
ingest_port="${INGEST_PORT:-19091}"
http_port="${HTTP_PORT:-19090}"

bin=$(mktemp -d)
srvlog="$bin/driftserve.log"
cleanup() {
	[ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true
	[ -n "${srv_pid:-}" ] && wait "$srv_pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

echo "soak: building driftserve, driftfeed, drifttool (race-instrumented server)"
go build -race -o "$bin/driftserve" ./cmd/driftserve
go build -o "$bin/driftfeed" ./cmd/driftfeed
go build -o "$bin/drifttool" ./cmd/drifttool

echo "soak: starting driftserve -ingest-addr localhost:$ingest_port"
"$bin/driftserve" -addr "localhost:$http_port" -ingest-addr "localhost:$ingest_port" \
	-max-tenants 8 -tenant-queue 64 -batch 8 -scale 0.02 -train 120 >"$srvlog" 2>&1 &
srv_pid=$!

# Wait for /healthz to answer (model provisioning takes a few seconds).
for i in $(seq 1 120); do
	if "$bin/drifttool" health "localhost:$http_port" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$srv_pid" 2>/dev/null; then
		echo "soak: driftserve died during startup:" >&2
		cat "$srvlog" >&2
		exit 1
	fi
	sleep 0.5
done

echo "soak: feeding $tenants tenants x $frames frames (fault seed $net_faults)"
"$bin/driftfeed" -addr "localhost:$ingest_port" -tenants "$tenants" \
	-frames "$frames" -net-faults "$net_faults" -scale 0.02

# Give the pump a moment to drain the tail, then interrogate health.
sleep 1
health=$("$bin/drifttool" health "localhost:$http_port")
printf '%s\n' "$health"

fail=0
if ! grep -q "total dropped: 0" <<<"$health"; then
	echo "soak: FAIL — frames were dropped" >&2
	fail=1
fi
if ! grep -q "mode: ingest" <<<"$health"; then
	echo "soak: FAIL — server not in ingest mode" >&2
	fail=1
fi
if ! grep -q "ingest: $tenants/$tenants tenants attached" <<<"$health"; then
	echo "soak: FAIL — expected $tenants attached tenants" >&2
	fail=1
fi
want=$((tenants * frames))
if ! grep -Eq "accepted $want +processed $want" <<<"$health"; then
	echo "soak: FAIL — expected accepted $want / processed $want" >&2
	fail=1
fi

if grep -iq "DATA RACE" "$srvlog"; then
	echo "soak: FAIL — race detected in driftserve:" >&2
	cat "$srvlog" >&2
	fail=1
fi

kill "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
srv_pid=

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "soak: ok — $want frames over the wire, zero dropped, server race-clean"
