#!/usr/bin/env bash
# Hot-standby failover soak: builds driftserve, driftfeed and drifttool
# (race-instrumented servers), starts a replicating primary and a hot
# standby, streams tenant frames at the pair through driftfeed's
# failover address list, then kill -9s the primary mid-stream. The
# standby must detect the dead primary, promote itself on the
# replicated state, and absorb the rest of the stream: driftfeed exits
# 0 with every frame acked and at least one recorded failover, and the
# promoted standby's health reports ingest mode, every tenant attached
# and zero dropped frames. The primary's checkpoint directory — torn
# wherever the kill landed — must still pass `drifttool inspect
# -verify`: atomic saves never leave a damaged generation behind.
#
# Usage:  scripts/failover_soak.sh
#   TENANTS=4 FRAMES=300 scripts/failover_soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tenants="${TENANTS:-3}"
frames="${FRAMES:-200}"
pri_http="${PRI_HTTP_PORT:-19290}"
pri_ingest="${PRI_INGEST_PORT:-19291}"
repl_port="${REPL_PORT:-19292}"
sby_http="${SBY_HTTP_PORT:-19293}"
sby_ingest="${SBY_INGEST_PORT:-19294}"

bin=$(mktemp -d)
prilog="$bin/primary.log"
sbylog="$bin/standby.log"
cleanup() {
	[ -n "${pri_pid:-}" ] && kill -9 "$pri_pid" 2>/dev/null || true
	[ -n "${sby_pid:-}" ] && kill "$sby_pid" 2>/dev/null || true
	[ -n "${sby_pid:-}" ] && wait "$sby_pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

echo "failover-soak: building driftserve, driftfeed, drifttool (race-instrumented servers)"
go build -race -o "$bin/driftserve" ./cmd/driftserve
go build -o "$bin/driftfeed" ./cmd/driftfeed
go build -o "$bin/drifttool" ./cmd/drifttool

echo "failover-soak: starting primary (ingest :$pri_ingest, replicating to :$repl_port)"
"$bin/driftserve" -addr "localhost:$pri_http" -ingest-addr "localhost:$pri_ingest" \
	-replicate-to "localhost:$repl_port" -replicate-every 100ms \
	-max-tenants 8 -tenant-queue 64 -batch 8 -scale 0.02 -train 120 >"$prilog" 2>&1 &
pri_pid=$!

echo "failover-soak: starting standby (replica :$repl_port, probing primary :$pri_http)"
"$bin/driftserve" -addr "localhost:$sby_http" -ingest-addr "localhost:$sby_ingest" \
	-standby-of "localhost:$pri_http" -replica-addr "localhost:$repl_port" \
	-probe-every 200ms -probe-fails 3 \
	-max-tenants 8 -tenant-queue 64 -batch 8 -scale 0.02 -train 120 >"$sbylog" 2>&1 &
sby_pid=$!

# Wait for both /healthz endpoints (model provisioning on the primary
# takes a few seconds; an un-promoted standby answers 200 "mode:
# standby" as soon as it listens).
for node in "primary localhost:$pri_http $pri_pid $prilog" "standby localhost:$sby_http $sby_pid $sbylog"; do
	set -- $node
	name=$1 hostport=$2 pid=$3 logf=$4
	for i in $(seq 1 120); do
		if "$bin/drifttool" health "$hostport" >/dev/null 2>&1; then
			break
		fi
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "failover-soak: $name died during startup:" >&2
			cat "$logf" >&2
			exit 1
		fi
		sleep 0.5
	done
done

# Let replication establish a base generation before the feed starts.
sleep 1

echo "failover-soak: feeding $tenants tenants x $frames frames through the failover address list"
# -fps paces the feed so the kill below lands mid-stream, not after
# the whole dataset has already been delivered to the primary.
"$bin/driftfeed" -addr "localhost:$pri_ingest,localhost:$sby_ingest" \
	-tenants "$tenants" -frames "$frames" -fps 40 -scale 0.02 >"$bin/feed.out" 2>&1 &
feed_pid=$!

# kill -9 the primary mid-stream: an arbitrary frame offset, decided by
# wall clock, not a checkpoint boundary.
sleep 3
echo "failover-soak: kill -9 primary (pid $pri_pid)"
kill -9 "$pri_pid" 2>/dev/null || true
wait "$pri_pid" 2>/dev/null || true
pri_pid=

# The standby must promote itself and start serving ingest.
promoted=0
for i in $(seq 1 100); do
	if "$bin/drifttool" health "localhost:$sby_http" 2>/dev/null | grep -q "mode: ingest"; then
		promoted=1
		break
	fi
	sleep 0.2
done
if [ "$promoted" -ne 1 ]; then
	echo "failover-soak: FAIL — standby never promoted:" >&2
	cat "$sbylog" >&2
	exit 1
fi
echo "failover-soak: standby promoted"

# The feed must finish clean against the promoted standby.
if ! wait "$feed_pid"; then
	echo "failover-soak: FAIL — driftfeed lost frames across the failover:" >&2
	cat "$bin/feed.out" >&2
	exit 1
fi
cat "$bin/feed.out"

fail=0
if ! grep -Eq "failovers [1-9]" "$bin/feed.out"; then
	echo "failover-soak: FAIL — no tenant recorded a failover" >&2
	fail=1
fi

# Give the promoted pump a moment to drain the tail, then interrogate.
sleep 1
health=$("$bin/drifttool" health "localhost:$sby_http")
printf '%s\n' "$health"

if ! grep -q "total dropped: 0" <<<"$health"; then
	echo "failover-soak: FAIL — frames were dropped on the promoted standby" >&2
	fail=1
fi
if ! grep -q "ingest: $tenants/$tenants tenants attached" <<<"$health"; then
	echo "failover-soak: FAIL — expected $tenants attached tenants on the promoted standby" >&2
	fail=1
fi
accepted=$(sed -n 's/.*accepted \([0-9]*\).*/\1/p' <<<"$health" | head -1)
processed=$(sed -n 's/.*processed \([0-9]*\).*/\1/p' <<<"$health" | head -1)
if [ -z "$accepted" ] || [ "$accepted" != "$processed" ]; then
	echo "failover-soak: FAIL — accepted $accepted != processed $processed on the promoted standby" >&2
	fail=1
fi
if [ "${accepted:-0}" -lt 1 ]; then
	echo "failover-soak: FAIL — promoted standby accepted no frames" >&2
	fail=1
fi

if ! grep -q "promoted to primary at generation" "$sbylog"; then
	echo "failover-soak: FAIL — standby log has no promotion record" >&2
	fail=1
fi
for logf in "$prilog" "$sbylog"; do
	if grep -iq "DATA RACE" "$logf"; then
		echo "failover-soak: FAIL — race detected in $(basename "$logf"):" >&2
		cat "$logf" >&2
		fail=1
	fi
done

# A kill -9'd persisting server must leave a state dir that still
# passes `drifttool inspect -verify`: atomic full+delta saves never
# leave a damaged generation behind. (-state-dir needs the self-feed
# mode, so this runs a separate short-lived server.)
echo "failover-soak: kill -9 a persisting self-feed server, then verify its state dir"
"$bin/driftserve" -addr "localhost:$pri_http" -state-dir "$bin/state" \
	-checkpoint-every 500ms -shards 2 -scale 0.02 -train 120 >"$bin/selfdrive.log" 2>&1 &
sd_pid=$!
for i in $(seq 1 120); do
	if "$bin/drifttool" health "localhost:$pri_http" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$sd_pid" 2>/dev/null; then
		echo "failover-soak: FAIL — self-feed server died during startup:" >&2
		cat "$bin/selfdrive.log" >&2
		exit 1
	fi
	sleep 0.5
done
sleep 2 # a few checkpoint intervals, then die mid-whatever
kill -9 "$sd_pid" 2>/dev/null || true
wait "$sd_pid" 2>/dev/null || true
if [ -z "$(ls -A "$bin/state" 2>/dev/null)" ]; then
	echo "failover-soak: FAIL — persisting server wrote no checkpoints in its lifetime" >&2
	fail=1
elif ! "$bin/drifttool" -verify inspect "$bin/state"; then
	echo "failover-soak: FAIL — killed server left a damaged checkpoint" >&2
	fail=1
fi

kill "$sby_pid" 2>/dev/null || true
wait "$sby_pid" 2>/dev/null || true
sby_pid=

if [ "$fail" -ne 0 ]; then
	echo "failover-soak: standby log follows" >&2
	cat "$sbylog" >&2
	exit 1
fi
echo "failover-soak: ok — primary killed mid-stream, standby promoted, zero frames lost, state verified"
