package videodrift

import (
	"fmt"

	"videodrift/internal/core"
	"videodrift/internal/parallel"
)

// ShardedOptions configures a ShardedMonitor: the per-shard monitor
// options plus the fan-out shape.
type ShardedOptions struct {
	Options
	// Shards is the number of independent streams (camera feeds) driven
	// over the shared model registry. Must be >= 1.
	Shards int
	// Workers bounds the goroutines ProcessBatch fans out on (<= 0 uses
	// GOMAXPROCS). Shard decisions are independent of the worker count:
	// each shard owns its pipeline, RNG stream and martingale state.
	Workers int
	// Tracers optionally attaches one telemetry tracer per shard
	// (len(Tracers) must be >= Shards when set), so per-stream drift
	// events and stage latencies stay separable. When nil, the embedded
	// Options.Tracer — which is safe for concurrent use — is shared by
	// every shard, or tracing is off if that is nil too.
	Tracers []*Tracer
}

// ShardedMonitor drives N independent video streams over one shared set
// of provisioned models — the multi-camera deployment shape of the
// paper's setting (one registry of per-condition models, many feeds
// hitting it). Each shard is a full Monitor: its own deployed model,
// Drift Inspector, martingale and selection state, seeded independently
// (base seed + shard index) so runs are reproducible per shard. Shards
// share the read-only expensive state — reference feature matrices,
// calibration scores, classifier weights — so memory and provisioning
// cost stay O(models), not O(models × shards).
type ShardedMonitor struct {
	shards []*Monitor
	pool   *parallel.Pool
}

// NewShardedMonitor builds one monitor per shard over the shared models.
// Every shard starts with the registry's first model deployed, exactly
// like NewMonitor; shard i's pipeline runs on seed Options.Pipeline.Seed
// + i.
func NewShardedMonitor(models []*Model, labeler Labeler, opts ShardedOptions) *ShardedMonitor {
	if opts.Shards < 1 {
		panic("videodrift: NewShardedMonitor needs Shards >= 1")
	}
	if opts.Tracers != nil && len(opts.Tracers) < opts.Shards {
		panic(fmt.Sprintf("videodrift: %d tracers for %d shards", len(opts.Tracers), opts.Shards))
	}
	sm := &ShardedMonitor{
		shards: make([]*Monitor, opts.Shards),
		pool:   parallel.New(opts.Workers),
	}
	// Warm the shared feature matrices once, outside the fan-out, so no
	// shard pays the flatten on its first frame.
	for _, m := range models {
		m.FeatMatrix()
	}
	for i := range sm.shards {
		shardOpts := opts.Options
		shardOpts.Pipeline.Seed += int64(i)
		if opts.Tracers != nil {
			shardOpts.Tracer = opts.Tracers[i]
		}
		sm.shards[i] = NewMonitor(models, labeler, shardOpts)
	}
	return sm
}

// Shards returns the number of streams the monitor drives.
func (sm *ShardedMonitor) Shards() int { return len(sm.shards) }

// Shard returns the monitor driving stream i — use it for per-shard
// queries (Current, Models, Telemetry). The returned Monitor must not be
// fed frames concurrently with ProcessBatch.
func (sm *ShardedMonitor) Shard(i int) *Monitor { return sm.shards[i] }

// ProcessBatch runs one frame per shard concurrently: frames[i] goes to
// shard i, and the returned events line up index-for-index. len(frames)
// must equal Shards. The fan-out is bounded by Workers; each shard's
// event stream is identical to feeding its Monitor serially.
func (sm *ShardedMonitor) ProcessBatch(frames []Frame) []Event {
	if len(frames) != len(sm.shards) {
		panic(fmt.Sprintf("videodrift: ProcessBatch with %d frames for %d shards", len(frames), len(sm.shards)))
	}
	events := make([]Event, len(frames))
	sm.pool.ForEach(len(frames), func(i int) {
		events[i] = sm.shards[i].Process(frames[i])
	})
	return events
}

// ShardStats returns shard i's metrics.
func (sm *ShardedMonitor) ShardStats(i int) Metrics { return sm.shards[i].Stats() }

// Stats aggregates metrics across all shards.
func (sm *ShardedMonitor) Stats() Metrics {
	var total core.Metrics
	for _, m := range sm.shards {
		s := m.Stats()
		total.Frames += s.Frames
		total.ModelInvocations += s.ModelInvocations
		total.DriftsDetected += s.DriftsDetected
		total.ModelsSelected += s.ModelsSelected
		total.ModelsTrained += s.ModelsTrained
		total.SelectingFrames += s.SelectingFrames
		total.TrainingFrames += s.TrainingFrames
	}
	return total
}
