package videodrift

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/faults"
	"videodrift/internal/forensics"
	"videodrift/internal/parallel"
)

// DefaultMaxRestarts is the crash-loop budget: how many consecutive
// panic-restarts the supervisor grants one shard on a single frame
// before its circuit breaker trips and the shard is declared failed.
const DefaultMaxRestarts = 3

// BatchMismatchError reports a ProcessBatch/ProcessBatches call whose
// frame or batch count does not line up with the fleet's current slot
// count. With dynamic Attach/Detach the slot count can move between
// assembling batches and submitting them, so callers that feed a
// dynamic fleet should re-size and retry on this error rather than
// treat it as fatal.
type BatchMismatchError struct {
	Batches int // batches (or frames) the caller supplied
	Slots   int // shard slots the fleet currently has
}

func (e *BatchMismatchError) Error() string {
	return fmt.Sprintf("videodrift: %d batches for %d shard slots", e.Batches, e.Slots)
}

// DetachedSlotError reports frames addressed to a shard slot that is
// currently detached (no tenant owns it).
type DetachedSlotError struct{ Slot int }

func (e *DetachedSlotError) Error() string {
	return fmt.Sprintf("videodrift: frames addressed to detached shard slot %d", e.Slot)
}

// ShardedOptions configures a ShardedMonitor: the per-shard monitor
// options plus the fan-out shape and the supervisor's fault policy.
type ShardedOptions struct {
	Options
	// Shards is the number of independent streams (camera feeds) driven
	// over the shared model registry. Must be >= 1.
	Shards int
	// Workers bounds the goroutines ProcessBatch fans out on (<= 0 uses
	// GOMAXPROCS). Shard decisions are independent of the worker count:
	// each shard owns its pipeline, RNG stream and martingale state.
	Workers int
	// Tracers optionally attaches one telemetry tracer per shard
	// (len(Tracers) must be >= Shards when set), so per-stream drift
	// events and stage latencies stay separable. When nil, the embedded
	// Options.Tracer — which is safe for concurrent use — is shared by
	// every shard, or tracing is off if that is nil too.
	Tracers []*Tracer
	// Faults optionally attaches a deterministic fault injector (chaos
	// testing): its worker faults fire before each shard's Process call
	// and its per-shard training hooks are wired into every pipeline.
	// Frame-level corruption is applied by the test harness via
	// faults.Injector.Apply before frames reach ProcessBatch.
	Faults *faults.Injector
	// MaxRestarts bounds consecutive panic-restarts of one shard worker
	// on the same frame before the crash-loop breaker trips (<= 0 means
	// DefaultMaxRestarts). A successful frame resets the count.
	MaxRestarts int
	// StallTimeout is how long a worker may stay on one in-flight frame
	// before Health reports the shard stalled. Zero disables the stall
	// watchdog.
	StallTimeout time.Duration
	// Clock is the stall watchdog's time source (nil means time.Now).
	// Injectable so chaos tests drive stall detection deterministically;
	// it never influences frame processing or drift decisions.
	Clock func() time.Time
}

// ShardedMonitor drives N independent video streams over one shared set
// of provisioned models — the multi-camera deployment shape of the
// paper's setting (one registry of per-condition models, many feeds
// hitting it). Each shard is a full Monitor: its own deployed model,
// Drift Inspector, martingale and selection state, seeded independently
// (base seed + shard index) so runs are reproducible per shard. Shards
// share the read-only expensive state — reference feature matrices,
// calibration scores, classifier weights — so memory and provisioning
// cost stay O(models), not O(models × shards).
//
// ProcessBatch and ProcessBatches supervise the shard workers: a panic
// inside Process is recovered, the shard is restored from its last
// batch-boundary snapshot and the batch is re-fed, so a transient crash
// is invisible in the shard's event stream. Supervision is
// batch-granular — one snapshot per micro-batch, not per frame — which
// is what makes batching pay: the per-frame snapshot cost of the
// supervisor is amortized over the batch. A crash loop (more than
// MaxRestarts consecutive panics on one batch) trips a circuit breaker:
// the shard is declared failed and later frames for it are dropped and
// counted, while the remaining shards keep serving.
type ShardedMonitor struct {
	// mu guards the shards/states slice headers against dynamic
	// Attach/Detach. Batch processing and Health hold the read lock (slot
	// contents are still single-writer per slot: one worker per shard plus
	// per-field atomics); Attach and Detach take the write lock, so the
	// slot set never moves under a running batch.
	mu      sync.RWMutex
	shards  []*Monitor
	states  []*shardState
	pool    *parallel.Pool
	labeler Labeler

	// baseModels and baseOpts are the shared provisioned entries and the
	// per-shard option template dynamic Attach builds new slots from.
	baseModels []*Model
	baseOpts   Options

	faults       *faults.Injector
	maxRestarts  int
	stallTimeout time.Duration
	clock        func() time.Time
}

// shardState is the supervisor's bookkeeping for one shard. The atomic
// fields are read by Health from other goroutines while a batch runs;
// the rest is touched only by the shard's worker slot inside
// ProcessBatch (at most one goroutine per shard at a time).
type shardState struct {
	opts     Options // per-shard options (seed-shifted, tracer and fault hooks wired)
	fed      int     // per-shard stream position (frames attempted)
	streak   int     // consecutive restarts on the current batch
	snap     core.PipelineSnapshot
	entries  []*core.ModelEntry
	regEpoch uint64 // registry epoch entries was cached at

	restarts  atomic.Int64 // total worker restarts
	dropped   atomic.Int64 // frames discarded after the breaker tripped
	failed    atomic.Bool  // crash-loop breaker tripped
	busySince atomic.Int64 // unix-nanos the in-flight batch started; 0 when idle

	// statsMu guards stats, the post-batch metrics mirror observers
	// (Stats, ShardStats — e.g. a /healthz handler) read instead of the
	// live pipeline, which only the shard's worker may touch mid-batch.
	statsMu sync.Mutex
	stats   core.Metrics
}

// setStats publishes the shard's post-batch metrics for observers.
func (st *shardState) setStats(m core.Metrics) {
	st.statsMu.Lock()
	st.stats = m
	st.statsMu.Unlock()
}

// loadStats reads the shard's last published metrics.
func (st *shardState) loadStats() core.Metrics {
	st.statsMu.Lock()
	defer st.statsMu.Unlock()
	return st.stats
}

// save records the shard's post-batch state: the pipeline snapshot plus
// the registry's entry list. The entry list is refreshed only when the
// registry's epoch moved (a new model was trained); the common batch
// grows no models, so a save is one pipeline snapshot plus an atomic
// load — not a per-batch slice copy. Snapshot entry lists are immutable
// once published, so holding the slice without copying is safe.
func (st *shardState) save(m *Monitor) {
	st.snap = m.pipe.Snapshot()
	if snap := m.pipe.Registry().Snapshot(); st.entries == nil || snap.Epoch() != st.regEpoch {
		st.entries = snap.Entries()
		st.regEpoch = snap.Epoch()
	}
	st.setStats(m.pipe.Metrics())
}

// ShardHealth is the supervisor's live view of one shard.
type ShardHealth struct {
	// State is the worst of the shard's pipeline health (training
	// retries, degraded serving) and the supervisor's view (breaker
	// tripped → HealthFailed, wedged → at least HealthDegraded).
	State Health
	// Stalled reports a frame in flight longer than StallTimeout.
	Stalled bool
	// Detached reports an unoccupied dynamic slot (no tenant attached);
	// a detached slot is healthy and never stalled.
	Detached bool
	// Restarts is the total number of supervised worker restarts.
	Restarts int
	// DroppedFrames counts frames discarded after the breaker tripped.
	DroppedFrames int
}

// ShardedHealth aggregates shard health for readiness checks.
type ShardedHealth struct {
	// State is the worst state across shards.
	State Health
	// Stalled reports whether any shard is currently wedged.
	Stalled bool
	// Shards holds the per-shard detail, indexed by shard.
	Shards []ShardHealth
}

// Serving reports whether the fleet should keep receiving traffic:
// false once any shard has failed or is wedged past the stall timeout.
// Degraded-but-serving shards (training retries after a drift) do not
// clear it — the deployed model still answers queries.
func (h ShardedHealth) Serving() bool {
	return h.State != HealthFailed && !h.Stalled
}

// NewShardedMonitor builds one monitor per shard over the shared models.
// Every shard starts with the registry's first model deployed, exactly
// like NewMonitor; shard i's pipeline runs on seed Options.Pipeline.Seed
// + i.
func NewShardedMonitor(models []*Model, labeler Labeler, opts ShardedOptions) *ShardedMonitor {
	if opts.Shards < 1 {
		panic("videodrift: NewShardedMonitor needs Shards >= 1")
	}
	if opts.Tracers != nil && len(opts.Tracers) < opts.Shards {
		panic(fmt.Sprintf("videodrift: %d tracers for %d shards", len(opts.Tracers), opts.Shards))
	}
	sm := newSharded(opts.Shards, labeler, opts)
	sm.baseModels = models
	// Warm the shared feature matrices once, outside the fan-out, so no
	// shard pays the flatten on its first frame.
	for _, m := range models {
		m.FeatMatrix()
	}
	for i := range sm.shards {
		shardOpts := sm.shardOptions(i, opts)
		shardOpts.Pipeline.Seed += int64(i)
		sm.shards[i] = NewMonitor(models, labeler, shardOpts)
		st := &shardState{opts: shardOpts}
		st.save(sm.shards[i]) // pristine snapshot: a frame-0 panic restores to it
		sm.states[i] = st
	}
	return sm
}

// NewDynamicSharded builds a fleet with zero initial shards over the
// shared models: slots are claimed with Attach as tenants appear and
// released with Detach as they go idle — the multi-tenant ingestion
// shape, where the network tier owns the tenant↔slot mapping. The
// expensive read-only state (feature matrices, calibration, classifier
// weights) is shared exactly as in NewShardedMonitor, so serving N
// tenants costs O(models) provisioned state, not O(models × tenants).
func NewDynamicSharded(models []*Model, labeler Labeler, opts ShardedOptions) *ShardedMonitor {
	sm := newSharded(0, labeler, opts)
	sm.baseModels = models
	for _, m := range models {
		m.FeatMatrix()
	}
	return sm
}

// newSharded allocates the supervisor shell shared by NewShardedMonitor
// and ResumeSharded.
func newSharded(n int, labeler Labeler, opts ShardedOptions) *ShardedMonitor {
	sm := &ShardedMonitor{
		shards:       make([]*Monitor, n),
		states:       make([]*shardState, n),
		pool:         parallel.Shared(opts.Workers),
		labeler:      labeler,
		baseOpts:     opts.Options,
		faults:       opts.Faults,
		maxRestarts:  opts.MaxRestarts,
		stallTimeout: opts.StallTimeout,
		clock:        opts.Clock,
	}
	if sm.maxRestarts <= 0 {
		sm.maxRestarts = DefaultMaxRestarts
	}
	if sm.clock == nil {
		sm.clock = time.Now
	}
	return sm
}

// shardOptions derives shard i's monitor options: the per-shard tracer
// and the injector's per-shard training-fault hook.
func (sm *ShardedMonitor) shardOptions(i int, opts ShardedOptions) Options {
	shardOpts := opts.Options
	if opts.Tracers != nil {
		shardOpts.Tracer = opts.Tracers[i]
	}
	if opts.Faults != nil {
		shardOpts.Pipeline.TrainFault = opts.Faults.TrainFault(i)
	}
	return shardOpts
}

// Shards returns the number of shard slots (attached or detached).
func (sm *ShardedMonitor) Shards() int {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	return len(sm.shards)
}

// Active returns the number of attached (occupied) shard slots.
func (sm *ShardedMonitor) Active() int {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	n := 0
	for _, m := range sm.shards {
		if m != nil {
			n++
		}
	}
	return n
}

// Shard returns the monitor driving stream i (nil for a detached slot) —
// use it for per-shard queries (Current, Models, Telemetry). The
// returned Monitor must not be fed frames concurrently with
// ProcessBatch; feeding it directly also bypasses the supervisor (no
// fault injection, panic recovery or snapshotting).
func (sm *ShardedMonitor) Shard(i int) *Monitor {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	return sm.shards[i]
}

// Attach claims a shard slot for a new stream: the lowest detached slot
// is reused, or a fresh one is appended. The new shard is a full
// Monitor over the shared model entries (deduped exactly as
// checkpointing shares them), seeded by slot index — so a stream
// attached to slot i behaves bit-identically to shard i of a fixed
// fleet. tr optionally attaches a per-stream telemetry tracer (nil
// shares the fleet's base tracer). Safe to call while batches run;
// Attach briefly blocks new ProcessBatch calls, never in-flight frames.
func (sm *ShardedMonitor) Attach(tr *Tracer) (int, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.baseModels) == 0 {
		return 0, fmt.Errorf("videodrift: Attach on a fleet with no base models")
	}
	slot := -1
	for i, m := range sm.shards {
		if m == nil {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = len(sm.shards)
		sm.shards = append(sm.shards, nil)
		sm.states = append(sm.states, nil)
	}
	shardOpts := sm.baseOpts
	if tr != nil {
		shardOpts.Tracer = tr
	}
	if sm.faults != nil {
		shardOpts.Pipeline.TrainFault = sm.faults.TrainFault(slot)
	}
	shardOpts.Pipeline.Seed += int64(slot)
	m := NewMonitor(sm.baseModels, sm.labeler, shardOpts)
	st := &shardState{opts: shardOpts}
	st.save(m)
	sm.shards[slot] = m
	sm.states[slot] = st
	return slot, nil
}

// Detach releases slot i: the shard's monitor (its private drift state,
// RNG streams and any breaker bookkeeping) is dropped and the slot
// becomes reusable by the next Attach. The shared model entries are
// untouched. It is an error to detach a slot that is not attached.
func (sm *ShardedMonitor) Detach(i int) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if i < 0 || i >= len(sm.shards) || sm.shards[i] == nil {
		return &DetachedSlotError{Slot: i}
	}
	sm.shards[i] = nil
	sm.states[i] = nil
	return nil
}

// ProcessBatch runs one frame per shard concurrently: frames[i] goes to
// shard i, and the returned events line up index-for-index. len(frames)
// must equal Shards (a *BatchMismatchError otherwise; with a dynamic
// fleet the slot count can move, so callers re-size and retry). The
// fan-out is bounded by Workers; each shard's event stream is identical
// to feeding its Monitor serially. A failed shard (breaker tripped)
// yields zero Events and counts the frames it drops in
// Health().Shards[i].DroppedFrames. It is the batch-size-1 case of
// ProcessBatches.
func (sm *ShardedMonitor) ProcessBatch(frames []Frame) ([]Event, error) {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	if len(frames) != len(sm.shards) {
		return nil, &BatchMismatchError{Batches: len(frames), Slots: len(sm.shards)}
	}
	for i, m := range sm.shards {
		if m == nil {
			return nil, &DetachedSlotError{Slot: i}
		}
	}
	events := make([]Event, len(frames))
	sm.pool.ForEach(len(frames), func(i int) {
		sm.processShardBatch(i, frames[i:i+1:i+1], events[i:i+1])
	})
	return events, nil
}

// ProcessBatches runs a micro-batch of consecutive frames per shard
// concurrently: batches[i] goes to shard i in order, and events[i][j]
// reports what shard i did with batches[i][j]. len(batches) must equal
// Shards (a *BatchMismatchError otherwise) and a non-empty batch for a
// detached slot is a *DetachedSlotError; batches may be ragged or empty
// (shards need not advance in lockstep within one call). Each shard's
// event stream is bit-identical to feeding its Monitor serially, under
// any batch size and worker count — batching only amortizes the
// supervisor's per-call snapshot over the batch. A panic anywhere in a
// shard's batch restores the shard to the batch start (pipeline
// snapshot plus forensics rewind) and re-runs the whole batch; a crash
// loop trips the breaker and drops the batch.
func (sm *ShardedMonitor) ProcessBatches(batches [][]Frame) ([][]Event, error) {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	if len(batches) != len(sm.shards) {
		return nil, &BatchMismatchError{Batches: len(batches), Slots: len(sm.shards)}
	}
	events := make([][]Event, len(batches))
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		if sm.shards[i] == nil {
			return nil, &DetachedSlotError{Slot: i}
		}
		events[i] = make([]Event, len(b))
	}
	sm.pool.ForEach(len(batches), func(i int) {
		if len(batches[i]) > 0 {
			sm.processShardBatch(i, batches[i], events[i])
		}
	})
	return events, nil
}

// processShardBatch feeds one shard a run of consecutive frames under
// supervision: injected worker faults fire before each frame, a panic
// is recovered and the shard restored to the batch start (re-running
// the batch), and a crash loop trips the breaker. events is filled
// frame by frame; on failure it is zeroed so partial results never
// leak.
func (sm *ShardedMonitor) processShardBatch(i int, frames []Frame, events []Event) {
	st := sm.states[i]
	start := st.fed
	st.fed += len(frames)
	if st.failed.Load() {
		st.dropped.Add(int64(len(frames)))
		return
	}
	// A mid-batch panic rolls the pipeline back to the batch start, so
	// the forensics recorder must rewind with it or the re-run would
	// duplicate pre-roll frames. At batch size 1 the panicking frame was
	// never recorded (Record runs after Process returns), so there is
	// nothing to rewind — and nothing to pay for on the per-frame path.
	var recMark forensics.RecorderState
	if len(frames) > 1 {
		recMark = sm.shards[i].rec.State()
	}
	st.busySince.Store(sm.clock().UnixNano())
	defer st.busySince.Store(0)
	for {
		panicked, reason := sm.attemptBatch(i, start, frames, events)
		if !panicked {
			st.streak = 0
			st.save(sm.shards[i])
			return
		}
		tr := sm.shards[i].Telemetry()
		st.streak++
		if st.streak > sm.maxRestarts {
			st.failed.Store(true)
			st.dropped.Add(int64(len(frames)))
			tr.HealthChanged(HealthFailed,
				fmt.Sprintf("shard %d crash loop: %d consecutive panics (%s)", i, st.streak, reason))
			clear(events)
			return
		}
		st.restarts.Add(1)
		tr.WorkerRestarted(i, st.streak, reason)
		if err := sm.restore(i); err != nil {
			st.failed.Store(true)
			st.dropped.Add(int64(len(frames)))
			tr.HealthChanged(HealthFailed, fmt.Sprintf("shard %d restore failed: %v", i, err))
			clear(events)
			return
		}
		if len(frames) > 1 {
			sm.shards[i].rec.Rewind(recMark)
		}
	}
}

// attemptBatch runs one supervised pass over a shard's batch,
// converting any panic — injected or real — into a recoverable verdict.
// Worker faults are keyed by absolute stream index (start+j), so a
// deterministic fault schedule lands on the same frames regardless of
// how the stream is batched.
func (sm *ShardedMonitor) attemptBatch(shard, start int, frames []Frame, events []Event) (panicked bool, reason string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			reason = fmt.Sprint(r)
		}
	}()
	for j := range frames {
		sm.faults.BeforeProcess(shard, start+j)
		events[j] = sm.shards[shard].Process(frames[j])
	}
	return false, ""
}

// restore rebuilds shard i's pipeline from its last snapshot, exactly as
// a checkpoint resume would: same registry entries, same configuration,
// bit-identical runtime state. The Monitor pointer is preserved so
// Shard(i) handles stay valid across restarts.
func (sm *ShardedMonitor) restore(i int) error {
	st := sm.states[i]
	cfg := st.opts.Pipeline
	cfg.Provision = st.opts.Provision
	if st.opts.Tracer != nil {
		cfg.Tracer = st.opts.Tracer
	}
	reg := core.NewRegistry(st.entries...) // NewRegistry copies the slice
	pipe, err := core.RestorePipeline(reg, sm.labeler, cfg, st.snap)
	if err != nil {
		return err
	}
	sm.shards[i].pipe = pipe
	// The rebuilt registry restarts its epoch counter with st.entries as
	// its epoch-0 snapshot; re-sync the cache so a later Add on the new
	// registry is not masked by an epoch collision with the old one.
	st.regEpoch = 0
	return nil
}

// Health reports the supervisor's live view of every shard: pipeline
// degradation (training retries), tripped breakers, stall-watchdog
// verdicts and drop/restart counts. Safe to call from other goroutines
// (e.g. an HTTP health handler) while ProcessBatch runs.
func (sm *ShardedMonitor) Health() ShardedHealth {
	now := sm.clock()
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	h := ShardedHealth{Shards: make([]ShardHealth, len(sm.shards))}
	for i, st := range sm.states {
		if st == nil {
			h.Shards[i] = ShardHealth{Detached: true}
			continue
		}
		sh := ShardHealth{
			State:         sm.shards[i].Health(),
			Restarts:      int(st.restarts.Load()),
			DroppedFrames: int(st.dropped.Load()),
		}
		if st.failed.Load() {
			sh.State = HealthFailed
		}
		if busy := st.busySince.Load(); busy != 0 && sm.stallTimeout > 0 &&
			now.Sub(time.Unix(0, busy)) > sm.stallTimeout {
			sh.Stalled = true
			if sh.State == HealthOK {
				sh.State = HealthDegraded
			}
		}
		h.Shards[i] = sh
		if sh.State > h.State {
			h.State = sh.State
		}
		h.Stalled = h.Stalled || sh.Stalled
	}
	return h
}

// ShardStats returns shard i's metrics (zero for a detached slot).
// Like Stats it reads the post-batch mirror, so it is safe to call
// while the shard is processing.
func (sm *ShardedMonitor) ShardStats(i int) Metrics {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	if sm.shards[i] == nil {
		return Metrics{}
	}
	return sm.states[i].loadStats()
}

// Batcher accumulates per-shard frames and flushes them into a
// ShardedMonitor as micro-batches, amortizing the supervisor's
// per-call snapshot cost when frames arrive one at a time. The flush
// policy is purely count-based — a flush fires when any shard's queue
// reaches the batch size, or on an explicit Flush — never wall-clock
// based, so a batched run's event stream is bit-identical to the
// unbatched one regardless of arrival timing. A Batcher is not safe for
// concurrent use; feed it from the same goroutine that would otherwise
// call ProcessBatch.
type Batcher struct {
	sm     *ShardedMonitor
	size   int
	queues [][]Frame
}

// NewBatcher returns a batcher flushing size frames per shard at a time
// (size <= 1 degenerates to flushing on every Add — per-frame
// supervision). The queue set grows with the fleet: frames may be added
// for any slot a later Flush will see, so a dynamic fleet can share one
// batcher across Attach calls.
func (sm *ShardedMonitor) NewBatcher(size int) *Batcher {
	if size < 1 {
		size = 1
	}
	return &Batcher{sm: sm, size: size, queues: make([][]Frame, sm.Shards())}
}

// Add queues one frame for a shard slot. When the slot's queue reaches
// the batch size every queued frame is flushed, returning the per-shard
// events (indexed by slot, in enqueue order); otherwise Add returns
// (nil, nil). A flush error leaves every queue intact (see Flush).
func (b *Batcher) Add(shard int, f Frame) ([][]Event, error) {
	for shard >= len(b.queues) {
		b.queues = append(b.queues, nil)
	}
	b.queues[shard] = append(b.queues[shard], f)
	if len(b.queues[shard]) >= b.size {
		return b.Flush()
	}
	return nil, nil
}

// Queued reports how many frames shard i currently has waiting.
func (b *Batcher) Queued(shard int) int {
	if shard >= len(b.queues) {
		return 0
	}
	return len(b.queues[shard])
}

// Flush drains every queue through ProcessBatches and returns the
// per-shard events, or (nil, nil) when nothing is queued. Call it at
// end-of-stream (or from an external cadence the caller owns) so tail
// frames are not held back. On error — a slot count that moved under a
// dynamic fleet, or frames for a slot detached since they were queued —
// every queue is left intact so no frame is silently dropped; the
// caller may re-route or retry.
func (b *Batcher) Flush() ([][]Event, error) {
	queued := false
	for _, q := range b.queues {
		if len(q) > 0 {
			queued = true
			break
		}
	}
	if !queued {
		return nil, nil
	}
	// A dynamic fleet may have grown since the last flush; pad so the
	// batch shape matches the slot count. (Attach between this read and
	// the call surfaces as a BatchMismatchError, which the caller
	// retries — Flush keeps the queues.)
	for n := b.sm.Shards(); len(b.queues) < n; {
		b.queues = append(b.queues, nil)
	}
	events, err := b.sm.ProcessBatches(b.queues)
	if err != nil {
		return nil, err
	}
	for i := range b.queues {
		b.queues[i] = b.queues[i][:0]
	}
	return events, nil
}

// Stats aggregates metrics across all attached shards. Safe to call
// while batches are in flight: it reads each shard's post-batch
// metrics mirror, so a concurrent observer sees the state as of the
// last completed batch, never a torn mid-batch view.
func (sm *ShardedMonitor) Stats() Metrics {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	var total core.Metrics
	for i, m := range sm.shards {
		if m == nil {
			continue
		}
		s := sm.states[i].loadStats()
		total.Frames += s.Frames
		total.ModelInvocations += s.ModelInvocations
		total.DriftsDetected += s.DriftsDetected
		total.ModelsSelected += s.ModelsSelected
		total.ModelsTrained += s.ModelsTrained
		total.SelectingFrames += s.SelectingFrames
		total.TrainingFrames += s.TrainingFrames
		total.QuarantinedFrames += s.QuarantinedFrames
		total.TrainingFailures += s.TrainingFailures
	}
	return total
}
