package videodrift

import (
	"fmt"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/forensics"
	"videodrift/internal/store"
)

// Checkpoint is a serializable snapshot of a monitor's complete state:
// every provisioned model (weights, reference samples, calibration
// scores) plus each stream shard's exact runtime position (deployed
// model, martingale, RNG streams, buffered frames). Resuming from a
// checkpoint reproduces the uninterrupted run bit-for-bit: every
// subsequent drift declaration, model selection and trained model is
// identical.
type Checkpoint = store.Checkpoint

// CheckpointStore manages a directory of rotated, atomically written
// checkpoint files (see internal/store and DESIGN.md §9 for the on-disk
// format).
type CheckpointStore = store.Store

// CheckpointInfo describes a checkpoint file without rebuilding the
// models in it — what `drifttool inspect` prints.
type CheckpointInfo = store.Description

// ErrNoCheckpoint reports a store directory with no checkpoint to
// resume from (a cold start).
var ErrNoCheckpoint = store.ErrNoCheckpoint

// OpenStore opens (creating if needed) a checkpoint directory.
func OpenStore(dir string) (*CheckpointStore, error) { return store.Open(dir) }

// LoadCheckpoint reads and verifies one checkpoint file. Damage —
// truncation, bit flips, unknown versions — surfaces as typed errors
// (store.ErrTruncated, store.ErrChecksum, *store.VersionError), never a
// panic.
func LoadCheckpoint(path string) (*Checkpoint, error) { return store.LoadPath(path) }

// InspectCheckpoint summarizes a checkpoint file cheaply.
func InspectCheckpoint(path string) (*CheckpointInfo, error) { return store.Inspect(path) }

// Checkpoint captures the monitor's full state. The monitor must not be
// processing frames concurrently with the capture; the snapshot is a
// copy, so processing may continue the moment it returns.
func (m *Monitor) Checkpoint() *Checkpoint {
	entries := m.pipe.Registry().Entries()
	refs := make([]int, len(entries))
	for i := range refs {
		refs[i] = i
	}
	return &Checkpoint{
		CreatedUnixNano: time.Now().UnixNano(),
		Frames:          int64(m.pipe.Metrics().Frames),
		Entries:         entries,
		Shards: []store.ShardState{{
			Registry:    refs,
			Pipeline:    m.pipe.Snapshot(),
			Forensics:   m.rec.State(),
			EventCounts: m.pipe.Tracer().KindCounts(),
		}},
	}
}

// Resume rebuilds a single-stream Monitor from a checkpoint. The labeler
// and options must match the original run's (the checkpoint stores
// runtime state, not configuration); with matching options the resumed
// monitor's event stream is bit-identical to the uninterrupted run's.
func Resume(cp *Checkpoint, labeler Labeler, opts Options) (*Monitor, error) {
	if len(cp.Shards) != 1 {
		return nil, fmt.Errorf("videodrift: checkpoint holds %d shards; use ResumeSharded", len(cp.Shards))
	}
	return resumeShard(cp, 0, labeler, opts)
}

// resumeShard rebuilds shard i's Monitor over the checkpoint's shared
// entry table.
func resumeShard(cp *Checkpoint, i int, labeler Labeler, opts Options) (*Monitor, error) {
	sh := cp.Shards[i]
	if len(sh.Registry) == 0 {
		return nil, fmt.Errorf("videodrift: shard %d has an empty registry", i)
	}
	ents := make([]*core.ModelEntry, len(sh.Registry))
	for j, ref := range sh.Registry {
		if ref < 0 || ref >= len(cp.Entries) {
			return nil, fmt.Errorf("videodrift: shard %d references entry %d of %d", i, ref, len(cp.Entries))
		}
		ents[j] = cp.Entries[ref]
	}
	cfg := opts.Pipeline
	cfg.Provision = opts.Provision
	if opts.Tracer != nil {
		cfg.Tracer = opts.Tracer
	}
	pipe, err := core.RestorePipeline(core.NewRegistry(ents...), labeler, cfg, sh.Pipeline)
	if err != nil {
		return nil, err
	}
	m := &Monitor{pipe: pipe}
	// Forensics resumes from the checkpointed recorder when one was
	// persisted (so replayable pre-rolls survive the restart); a
	// checkpoint without one starts a fresh recorder if the resuming
	// options ask for forensics.
	switch {
	case sh.Forensics.Enabled:
		rec, err := forensics.Restore(sh.Forensics, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		m.rec = rec
	case opts.Forensics.Enabled:
		m.rec = forensics.NewRecorder(opts.Forensics, cfg.Tracer, pipe)
	}
	return m, nil
}

// Checkpoint captures every shard's state plus the shared model table.
// Models shared between shards (the provisioned set, and any entry added
// to several registries) are stored once and restored shared. Do not
// call concurrently with ProcessBatch. Detached slots of a dynamic
// fleet are skipped: the checkpoint holds the attached shards
// compacted in slot order (each shard's full runtime state — including
// its RNG streams — lives in its pipeline snapshot, so compaction does
// not disturb replay; only the slot numbering resets).
func (sm *ShardedMonitor) Checkpoint() *Checkpoint {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	seen := make(map[*Model]int)
	cp := &Checkpoint{CreatedUnixNano: time.Now().UnixNano()}
	for _, m := range sm.shards {
		if m == nil {
			continue
		}
		entries := m.pipe.Registry().Entries()
		refs := make([]int, len(entries))
		for j, e := range entries {
			idx, ok := seen[e]
			if !ok {
				idx = len(cp.Entries)
				cp.Entries = append(cp.Entries, e)
				seen[e] = idx
			}
			refs[j] = idx
		}
		if f := int64(m.pipe.Metrics().Frames); f > cp.Frames {
			cp.Frames = f
		}
		cp.Shards = append(cp.Shards, store.ShardState{
			Registry:    refs,
			Pipeline:    m.pipe.Snapshot(),
			Forensics:   m.rec.State(),
			EventCounts: m.pipe.Tracer().KindCounts(),
		})
	}
	return cp
}

// ResumeSharded rebuilds a ShardedMonitor from a checkpoint. The shard
// count comes from the checkpoint; opts.Shards must be zero or equal to
// it. The worker count is free to differ — shard decisions are
// independent of the fan-out shape, so determinism holds at any Workers
// setting.
func ResumeSharded(cp *Checkpoint, labeler Labeler, opts ShardedOptions) (*ShardedMonitor, error) {
	n := len(cp.Shards)
	if n == 0 {
		return nil, fmt.Errorf("videodrift: checkpoint holds no shards")
	}
	if opts.Shards != 0 && opts.Shards != n {
		return nil, fmt.Errorf("videodrift: checkpoint holds %d shards, options ask for %d", n, opts.Shards)
	}
	if opts.Tracers != nil && len(opts.Tracers) < n {
		return nil, fmt.Errorf("videodrift: %d tracers for %d shards", len(opts.Tracers), n)
	}
	sm := newSharded(n, labeler, opts)
	sm.baseModels = cp.Entries // dynamic Attach reuses the shared table
	// Warm the shared feature matrices once, as NewShardedMonitor does.
	for _, e := range cp.Entries {
		e.FeatMatrix()
	}
	for i := range sm.shards {
		shardOpts := sm.shardOptions(i, opts)
		m, err := resumeShard(cp, i, labeler, shardOpts)
		if err != nil {
			return nil, err
		}
		sm.shards[i] = m
		st := &shardState{opts: shardOpts}
		st.save(m)
		sm.states[i] = st
	}
	return sm, nil
}
