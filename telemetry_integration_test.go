package videodrift

import (
	"strings"
	"testing"

	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// TestTelemetryDriftEventsMatchBDD runs the unsupervised pipeline over the
// BDD analog and checks that every ground-truth drift point produces a
// DriftDeclared trace event within the detector's nominal lag budget of
// W × SampleEvery frames — the telemetry analog of the paper's BDD
// detection-lag experiment (Table 2 reports ≈28-frame lags; our stride-10
// sampling bounds the lag at 40).
func TestTelemetryDriftEventsMatchBDD(t *testing.T) {
	ds := dataset.BDD(0.01)
	cfg := experiments.QuickConfig()
	env := experiments.BuildEnvUnsupervised(ds, cfg)

	// The BDD warmup segment runs under the LAST condition in the
	// registry, but the pipeline deploys the first entry; rotate so the
	// deployed model matches the warmup distribution.
	ents := env.Registry.Entries()
	reordered := append([]*core.ModelEntry{ents[len(ents)-1]}, ents[:len(ents)-1]...)
	reg := core.NewRegistry(reordered...)

	pcfg := core.DefaultPipelineConfig(ds.FrameDim(), 2)
	pcfg.Selector = core.SelectorMSBI
	pcfg.Provision = env.Provision
	pcfg.NewModelFrames = cfg.TrainFrames
	tr := telemetry.New(telemetry.Config{RingSize: 8192})
	pcfg.Tracer = tr

	pipe := core.NewPipeline(reg, nil, pcfg)
	stream := ds.Stream()
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		pipe.Process(f)
	}

	dic := core.DefaultDIConfig()
	tol := dic.W * dic.SampleEvery

	var declared []int
	var lags []int
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindDriftDeclared {
			declared = append(declared, e.Frame)
			lags = append(lags, e.Lag)
		}
	}
	drifts := stream.DriftPoints()
	if len(declared) != len(drifts) {
		t.Fatalf("declared %d drifts at frames %v, want %d at points %v",
			len(declared), declared, len(drifts), drifts)
	}
	for i, dp := range drifts {
		frame := declared[i]
		if frame <= dp || frame > dp+tol {
			t.Errorf("drift %d declared at frame %d, want within (%d, %d]", i, frame, dp, dp+tol)
		}
		// The event's lag field counts frames observed since the
		// inspector's last reset; the reset happened at or before the
		// drift point, so the observation span must cover the true lag.
		if lags[i] < frame-dp {
			t.Errorf("drift %d reports lag %d, shorter than true lag %d", i, lags[i], frame-dp)
		}
	}

	// Each drift should resolve a selection; the counters must line up
	// with the pipeline's own metrics.
	s := tr.Snapshot()
	m := pipe.Metrics()
	if s.Drifts != uint64(m.DriftsDetected) {
		t.Errorf("tracer drifts %d != pipeline metrics %d", s.Drifts, m.DriftsDetected)
	}
	if s.Selections != uint64(m.ModelsSelected) {
		t.Errorf("tracer selections %d != pipeline metrics %d", s.Selections, m.ModelsSelected)
	}
	if m.SelectingFrames == 0 {
		t.Error("Metrics.SelectingFrames stayed 0 across drifts")
	}
	if s.Frames != uint64(m.Frames) {
		t.Errorf("tracer frames %d != pipeline frames %d", s.Frames, m.Frames)
	}
}

// TestFacadeTelemetry exercises the public wiring: Options.Tracer flows to
// Monitor.Telemetry() and SafeMonitor.Telemetry(), per-state frame
// accounting reaches Stats(), and the Prometheus export carries the
// documented metric names.
func TestFacadeTelemetry(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)

	tracer := NewTracer(TracerConfig{RingSize: 512})
	opts.Tracer = tracer
	mon := NewMonitor([]*Model{day, night}, facadeLabeler, opts)
	if mon.Telemetry() != tracer {
		t.Fatal("Monitor.Telemetry() did not return the configured tracer")
	}

	for _, f := range vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 150, 1, 3) {
		mon.Process(f)
	}
	switched := false
	for _, f := range vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 250, 1, 4) {
		if ev := mon.Process(f); ev.SwitchedTo == "night" {
			switched = true
			break
		}
	}
	if !switched {
		t.Fatal("monitor never deployed the night model")
	}

	st := mon.Stats()
	if st.SelectingFrames == 0 {
		t.Errorf("Stats().SelectingFrames = 0 after a drift; stats = %+v", st)
	}
	snap := tracer.Snapshot()
	if snap.Drifts == 0 || snap.Selections == 0 || snap.Deployments < 2 {
		t.Errorf("snapshot counters wrong: %+v", snap)
	}
	if snap.Model != "night" {
		t.Errorf("snapshot deployed model = %q", snap.Model)
	}
	if got := uint64(st.Frames); snap.Frames != got {
		t.Errorf("tracer frames %d != Stats().Frames %d", snap.Frames, got)
	}

	var b strings.Builder
	if err := tracer.WritePrometheusTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"videodrift_drifts_total 1",
		`videodrift_stage_latency_seconds{stage="featurize",quantile="0.5"}`,
		`videodrift_stage_latency_seconds{stage="classify",quantile="0.99"}`,
		"videodrift_martingale_value ",
		`videodrift_deployed_model{model="night"} 1`,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("Prometheus output missing %q", name)
		}
	}

	// SafeMonitor passthrough.
	opts2 := Defaults(facadeDim, facadeClasses)
	tr2 := NewTracer(TracerConfig{})
	opts2.Tracer = tr2
	sm := NewSafeMonitor([]*Model{day}, facadeLabeler, opts2)
	if sm.Telemetry() != tr2 {
		t.Error("SafeMonitor.Telemetry() did not return the configured tracer")
	}
	if st := sm.Stats(); st.Frames != 0 {
		t.Errorf("fresh SafeMonitor Stats() = %+v", st)
	}
}
